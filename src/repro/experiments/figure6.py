"""Figure 6: speedup of the parallel A* over the serial A*.

The paper plots, for each CCR set, the speedup on 2, 4, 8 and 16 PPEs
of the Intel Paragon across graph sizes 10…32.  The observed shape:
moderately sub-linear speedups, slightly dropping with graph size
(extra states + communication overhead), and more irregular curves at
CCR = 10 (more divergent search directions).

Our reproduction runs the same sweep on the simulated message-passing
machine (mesh topology, the Paragon's) and reports
``speedup = serial work units / parallel makespan units``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import SpeedupReport, measure_speedup
from repro.util.tables import render_table
from repro.workloads.suite import WorkloadSuite, paper_suite

__all__ = ["Figure6Point", "Figure6Result", "run_figure6"]


@dataclass(frozen=True)
class Figure6Point:
    """One point of one speedup curve.

    ``exact`` is True when both the serial and the parallel run proved
    optimality (neither tripped its budget); only exact points carry the
    paper's guarantees (equal lengths, meaningful speedups).
    """

    ccr: float
    size: int
    num_ppes: int
    speedup: float
    efficiency: float
    extra_state_ratio: float  # parallel work / serial work
    lengths_agree: bool
    exact: bool


@dataclass
class Figure6Result:
    """All points, grouped for rendering into the paper's three plots."""

    points: list[Figure6Point]

    def curve(self, ccr: float, num_ppes: int) -> list[Figure6Point]:
        """One speedup-vs-size curve."""
        return sorted(
            (p for p in self.points if p.ccr == ccr and p.num_ppes == num_ppes),
            key=lambda p: p.size,
        )

    def render(self) -> str:
        """Three size × PPE-count speedup tables, one per CCR.

        Cells from budget-capped (non-exact) runs are marked with ``*``
        — their ratios compare two truncated searches, not the paper's
        quantity.
        """
        blocks = []
        ccrs = sorted({p.ccr for p in self.points})
        ppes = sorted({p.num_ppes for p in self.points})
        any_capped = False
        for ccr in ccrs:
            sizes = sorted({p.size for p in self.points if p.ccr == ccr})
            rows = []
            for size in sizes:
                row: list[object] = [size]
                for q in ppes:
                    match = [
                        p for p in self.points
                        if p.ccr == ccr and p.size == size and p.num_ppes == q
                    ]
                    if not match:
                        row.append(None)
                    elif match[0].exact:
                        row.append(f"{match[0].speedup:.2f}")
                    else:
                        any_capped = True
                        row.append(f"{match[0].speedup:.2f}*")
                rows.append(row)
            blocks.append(
                render_table(
                    ["Size"] + [f"{q} PPEs" for q in ppes],
                    rows,
                    title=f"Figure 6 — speedup, CCR = {ccr} (simulated mesh)",
                )
            )
        out = "\n\n".join(blocks)
        if any_capped:
            out += "\n\n(* = budget-capped run; ratio not meaningful)"
        return out


def run_figure6(
    suite: WorkloadSuite | None = None,
    config: ExperimentConfig | None = None,
    cache: OptimumCache | None = None,
    *,
    topology: str = "mesh",
) -> Figure6Result:
    """Sweep PPE counts over the workload on the simulated machine."""
    if suite is None:
        suite = paper_suite()
    if config is None:
        config = ExperimentConfig()
    if cache is None:
        cache = OptimumCache(config=config)

    points: list[Figure6Point] = []
    for inst in suite:
        serial = cache.optimal_result(inst)
        for q in config.ppe_counts:
            spec = MachineSpec(num_ppes=q, topology=topology)
            report, par = measure_speedup(
                inst.graph,
                inst.system,
                spec,
                budget=config.budget(),
                serial_result=serial,
            )
            exact = serial.optimal and par.result.bound != float("inf")
            points.append(
                _point(inst.ccr, inst.size, report, par.total_expansions, exact)
            )
    return Figure6Result(points=points)


def _point(
    ccr: float, size: int, report: SpeedupReport, parallel_work: int, exact: bool
) -> Figure6Point:
    extra = (
        parallel_work / report.serial_expansions
        if report.serial_expansions
        else 1.0
    )
    return Figure6Point(
        ccr=ccr,
        size=size,
        num_ppes=report.num_ppes,
        speedup=report.speedup,
        efficiency=report.efficiency,
        extra_state_ratio=extra,
        lengths_agree=report.lengths_agree,
        exact=exact,
    )
