"""Shared experiment infrastructure: configuration and optimum caching.

Optimal schedule lengths are needed by several experiments (Figure 7's
deviations, the heuristic comparison); :class:`OptimumCache` computes
each instance's optimum once via serial A* and reuses it, optionally
persisting to JSON so repeated benchmark runs skip the expensive part.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.search.astar import astar_schedule
from repro.search.result import SearchResult
from repro.util.timing import Budget
from repro.workloads.suite import WorkloadInstance

__all__ = ["ExperimentConfig", "OptimumCache"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Budgets and sweep parameters shared by the experiment drivers.

    ``max_expansions`` bounds each individual search; instances whose
    searches trip the budget are reported with ``proven=False`` rather
    than dropped, so tables always have every row.
    """

    max_expansions: int | None = 200_000
    max_seconds: float | None = 60.0
    ppe_counts: tuple[int, ...] = (2, 4, 8, 16)
    epsilons: tuple[float, ...] = (0.2, 0.5)

    def budget(self) -> Budget:
        """A fresh budget instance (budgets hold mutable clock state)."""
        return Budget(
            max_expanded=self.max_expansions, max_seconds=self.max_seconds
        )


@dataclass
class OptimumCache:
    """Memoized optimal lengths per workload instance."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    path: Path | None = None
    _memory: dict[str, float] = field(default_factory=dict)
    _proven: dict[str, bool] = field(default_factory=dict)
    _results: dict[str, SearchResult] = field(default_factory=dict)

    #: Bumped whenever the WorkloadInstance.key format changes (v2:
    #: fingerprint-based keys); persisted files from other versions are
    #: dropped wholesale instead of accumulating unreachable entries.
    SCHEMA = 2

    def __post_init__(self) -> None:
        if self.path is not None and Path(self.path).exists():
            try:
                data = json.loads(Path(self.path).read_text())
                if data.get("schema") != self.SCHEMA:
                    raise ValueError("stale optimum-cache schema")
                entries = data["entries"]
                self._memory = {k: float(v["length"]) for k, v in entries.items()}
                self._proven = {k: bool(v["proven"]) for k, v in entries.items()}
            except (ValueError, KeyError, TypeError, AttributeError):
                # A corrupt or stale cache must never poison an experiment
                # run — drop it and recompute (the next persist overwrites).
                self._memory = {}
                self._proven = {}

    def optimal_result(self, inst: WorkloadInstance) -> SearchResult:
        """Full serial-A* result for an instance (memoized in-process)."""
        res = self._results.get(inst.key)
        if res is None:
            res = astar_schedule(
                inst.graph, inst.system, budget=self.config.budget()
            )
            self._results[inst.key] = res
            self._memory[inst.key] = res.length
            self._proven[inst.key] = res.optimal
            self._persist()
        return res

    def optimal_length(self, inst: WorkloadInstance) -> float:
        """Optimal (or best-proven) length for an instance."""
        if inst.key in self._memory and inst.key not in self._results:
            return self._memory[inst.key]
        return self.optimal_result(inst).length

    def is_proven(self, inst: WorkloadInstance) -> bool:
        """True when the cached length is provably optimal."""
        if inst.key in self._proven and inst.key not in self._results:
            return self._proven[inst.key]
        return self.optimal_result(inst).optimal

    def _persist(self) -> None:
        if self.path is None:
            return
        data = {
            "schema": self.SCHEMA,
            "entries": {
                k: {"length": self._memory[k], "proven": self._proven.get(k, False)}
                for k in self._memory
            },
        }
        Path(self.path).write_text(json.dumps(data, indent=2, sort_keys=True))
