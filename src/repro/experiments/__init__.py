"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.experiments.table1`  — Table 1 (Chen & Yu vs A* w/o
  pruning vs full A*, three CCR sets).
* :mod:`repro.experiments.figure6` — Figure 6 (parallel A* speedups on
  2/4/8/16 PPEs, three CCR sets).
* :mod:`repro.experiments.figure7` — Figure 7 (parallel Aε* deviation
  from optimal and time ratio, ε ∈ {0.2, 0.5}).
* :mod:`repro.experiments.ablation` — per-rule pruning ablation (E4)
  and cost-function comparison.
* :mod:`repro.experiments.heuristics` — heuristic deviation from
  optimal (E5; the measurement the paper's introduction motivates).
"""

from repro.experiments.ablation import run_ablation
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.heuristics import run_heuristic_comparison
from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.experiments.table1 import run_table1

__all__ = [
    "ExperimentConfig",
    "OptimumCache",
    "run_table1",
    "run_figure6",
    "run_figure7",
    "run_ablation",
    "run_heuristic_comparison",
]
