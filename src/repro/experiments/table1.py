"""Table 1: serial running-time comparison.

The paper's Table 1 reports, for each CCR ∈ {0.1, 1.0, 10.0} and each
v = 10…32, the single-processor running time (seconds on the Paragon)
of three algorithms:

* ``Chen``    — Chen & Yu's branch-and-bound with the path-matching
  underestimate;
* ``A*``      — the proposed A* *without* the §3.2 pruning techniques
  (the column the paper labels "A*full" measures pruning off);
* ``full A*`` — the proposed A* with every pruning technique.

Claims the table supports (and the assertions our tests/benches make):

1. both A* columns beat Chen & Yu at every size — the cheap cost
   function dominates the comparison;
2. pruning consistently saves a double-digit percentage (≈20% in the
   paper);
3. all columns grow steeply with v and with CCR.

We report modern wall-clock seconds *and* the machine-independent work
counters (states expanded / generated, cost-function evaluations) —
see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.chen_yu import chen_yu_schedule
from repro.experiments.runner import ExperimentConfig
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult
from repro.util.tables import render_table
from repro.workloads.suite import WorkloadSuite, paper_suite

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One (ccr, size) measurement row."""

    ccr: float
    size: int
    chen_seconds: float
    astar_nopruning_seconds: float
    astar_full_seconds: float
    chen_expanded: int
    astar_nopruning_expanded: int
    astar_full_expanded: int
    optimal_length: float
    all_agree: bool
    all_proven: bool

    @property
    def pruning_saving(self) -> float:
        """Fractional time saved by the §3.2 techniques."""
        if self.astar_nopruning_seconds <= 0:
            return 0.0
        return 1.0 - self.astar_full_seconds / self.astar_nopruning_seconds


@dataclass
class Table1Result:
    """All rows plus rendering helpers."""

    rows: list[Table1Row]

    def by_ccr(self, ccr: float) -> list[Table1Row]:
        """Rows of one CCR set, by size."""
        return sorted((r for r in self.rows if r.ccr == ccr), key=lambda r: r.size)

    def render(self) -> str:
        """Paper-shaped tables: one block per CCR."""
        blocks = []
        for ccr in sorted({r.ccr for r in self.rows}):
            rows = [
                [
                    r.size,
                    r.chen_seconds,
                    r.astar_nopruning_seconds,
                    r.astar_full_seconds,
                    f"{100 * r.pruning_saving:.0f}%",
                    "yes" if r.all_proven else "budget",
                ]
                for r in self.by_ccr(ccr)
            ]
            blocks.append(
                render_table(
                    ["Size", "Chen (s)", "A* no-prune (s)", "A* full (s)",
                     "saved", "proven"],
                    rows,
                    title=f"Table 1 — CCR = {ccr} (seconds, this machine)",
                    float_fmt="{:.3f}",
                )
            )
        return "\n\n".join(blocks)

    def render_work(self) -> str:
        """The machine-independent companion table (states expanded)."""
        blocks = []
        for ccr in sorted({r.ccr for r in self.rows}):
            rows = [
                [
                    r.size,
                    r.chen_expanded,
                    r.astar_nopruning_expanded,
                    r.astar_full_expanded,
                    r.optimal_length,
                ]
                for r in self.by_ccr(ccr)
            ]
            blocks.append(
                render_table(
                    ["Size", "Chen exp.", "A* no-prune exp.", "A* full exp.",
                     "opt length"],
                    rows,
                    title=f"Table 1 (work counters) — CCR = {ccr}",
                    float_fmt="{:.0f}",
                )
            )
        return "\n\n".join(blocks)


def run_table1(
    suite: WorkloadSuite | None = None,
    config: ExperimentConfig | None = None,
) -> Table1Result:
    """Run the three algorithms over the workload and collect rows."""
    if suite is None:
        suite = paper_suite()
    if config is None:
        config = ExperimentConfig()

    rows: list[Table1Row] = []
    for inst in suite:
        chen = chen_yu_schedule(inst.graph, inst.system, budget=config.budget())
        nop = astar_schedule(
            inst.graph,
            inst.system,
            pruning=PruningConfig.none(),
            budget=config.budget(),
        )
        full = astar_schedule(
            inst.graph,
            inst.system,
            pruning=PruningConfig.all(),
            budget=config.budget(),
        )
        rows.append(_row(inst.ccr, inst.size, chen, nop, full))
    return Table1Result(rows=rows)


def _row(
    ccr: float, size: int, chen: SearchResult, nop: SearchResult, full: SearchResult
) -> Table1Row:
    lengths = {round(r.length, 6) for r in (chen, nop, full) if r.schedule}
    return Table1Row(
        ccr=ccr,
        size=size,
        chen_seconds=chen.stats.wall_seconds,
        astar_nopruning_seconds=nop.stats.wall_seconds,
        astar_full_seconds=full.stats.wall_seconds,
        chen_expanded=chen.stats.states_expanded,
        astar_nopruning_expanded=nop.stats.states_expanded,
        astar_full_expanded=full.stats.states_expanded,
        optimal_length=full.length,
        all_agree=len(lengths) == 1,
        all_proven=chen.optimal and nop.optimal and full.optimal,
    )
