"""Pruning-rule and cost-function ablation (experiment E4).

The paper reports the *aggregate* effect of its pruning techniques
(Table 1: full A* ≈ 20% faster than A* without pruning) and argues for
its cheap cost function over expensive ones.  This driver isolates each
factor: every pruning rule is switched on alone (and off alone from the
full set), and the three cost functions are compared on the same
instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentConfig
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.util.tables import render_table
from repro.workloads.suite import WorkloadSuite, paper_suite

__all__ = ["AblationRow", "AblationResult", "run_ablation", "ABLATION_VARIANTS"]

#: Named pruning variants measured by the ablation.  "extended" adds the
#: commutation partial-order reduction and "fixed-order" the
#: fixed-task-order rule (Akram et al. 2024) — this library's two
#: extensions beyond the paper's four rules (mutually exclusive, hence
#: two variants rather than one).
ABLATION_VARIANTS: dict[str, PruningConfig] = {
    "none": PruningConfig.none(),
    "full": PruningConfig.all(),
    "extended": PruningConfig.extended(),
    "fixed-order": PruningConfig.with_fixed_order(),
    "only-isomorphism": PruningConfig.only(processor_isomorphism=True),
    "only-equivalence": PruningConfig.only(node_equivalence=True),
    "only-priority": PruningConfig.only(priority_ordering=True),
    "only-upper-bound": PruningConfig.only(upper_bound=True),
    "full-minus-isomorphism": PruningConfig(processor_isomorphism=False),
    "full-minus-equivalence": PruningConfig(node_equivalence=False),
    "full-minus-priority": PruningConfig(priority_ordering=False),
    "full-minus-upper-bound": PruningConfig(upper_bound=False),
}


@dataclass(frozen=True)
class AblationRow:
    """One (instance, variant) measurement."""

    ccr: float
    size: int
    variant: str
    seconds: float
    expanded: int
    generated: int
    length: float
    proven: bool


@dataclass
class AblationResult:
    """All ablation measurements."""

    rows: list[AblationRow]

    def render(self) -> str:
        """Variant × instance table of expanded-state counts."""
        variants = list(dict.fromkeys(r.variant for r in self.rows))
        keys = sorted({(r.ccr, r.size) for r in self.rows})
        table_rows = []
        for variant in variants:
            row: list[object] = [variant]
            for ccr, size in keys:
                match = [
                    r for r in self.rows
                    if r.variant == variant and r.ccr == ccr and r.size == size
                ]
                row.append(match[0].expanded if match else None)
            table_rows.append(row)
        return render_table(
            ["variant"] + [f"v={s},CCR={c}" for c, s in keys],
            table_rows,
            title="Pruning ablation — states expanded",
            float_fmt="{:.0f}",
        )

    def lengths_consistent(self) -> bool:
        """All proven variants agree on the optimum per instance."""
        by_key: dict[tuple[float, int], set[float]] = {}
        for r in self.rows:
            if r.proven:
                by_key.setdefault((r.ccr, r.size), set()).add(round(r.length, 6))
        return all(len(v) == 1 for v in by_key.values())


def run_ablation(
    suite: WorkloadSuite | None = None,
    config: ExperimentConfig | None = None,
    *,
    variants: dict[str, PruningConfig] | None = None,
    cost: str = "paper",
) -> AblationResult:
    """Measure every pruning variant over the workload."""
    if suite is None:
        suite = paper_suite(sizes=(10, 12, 14))
    if config is None:
        config = ExperimentConfig()
    if variants is None:
        variants = ABLATION_VARIANTS

    rows: list[AblationRow] = []
    for inst in suite:
        for name, pruning in variants.items():
            res = astar_schedule(
                inst.graph,
                inst.system,
                pruning=pruning,
                cost=cost,
                budget=config.budget(),
            )
            rows.append(
                AblationRow(
                    ccr=inst.ccr,
                    size=inst.size,
                    variant=name,
                    seconds=res.stats.wall_seconds,
                    expanded=res.stats.states_expanded,
                    generated=res.stats.states_generated,
                    length=res.length,
                    proven=res.optimal,
                )
            )
    return AblationResult(rows=rows)
