"""Figure 7: the parallel Aε* — deviation from optimal and time ratio.

The paper runs the parallel Aε* on 16 PPEs with ε ∈ {0.2, 0.5} over
the three CCR sets and reports (a, c) the percentage deviation of the
returned schedule length from optimal and (b, d) the ratio of Aε*
scheduling time to A* scheduling time.  The observed shape: deviations
far below the ε guarantee (often 0, especially for small graphs);
time ratios ≈ 0.6-0.9 for ε = 0.2 and ≈ 0.3-0.5 for ε = 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentConfig, OptimumCache
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.util.tables import render_table
from repro.workloads.suite import WorkloadSuite, paper_suite

__all__ = ["Figure7Point", "Figure7Result", "run_figure7"]


@dataclass(frozen=True)
class Figure7Point:
    """One (ccr, size, ε) measurement.

    ``proven`` is True when the reference optimum was proven *and* the
    Aε* run completed within its budget; Theorem 2's guarantee
    (``within_bound``) only applies to proven points — budget-capped
    points are still reported, flagged, for completeness.
    """

    ccr: float
    size: int
    epsilon: float
    optimal_length: float
    approx_length: float
    deviation_pct: float
    time_ratio: float  # Aε* makespan units / A* makespan units
    within_bound: bool
    proven: bool


@dataclass
class Figure7Result:
    """All points plus paper-shaped rendering."""

    points: list[Figure7Point]

    def series(self, ccr: float, epsilon: float) -> list[Figure7Point]:
        """One deviation/time-ratio series."""
        return sorted(
            (p for p in self.points if p.ccr == ccr and p.epsilon == epsilon),
            key=lambda p: p.size,
        )

    def render(self) -> str:
        """Four blocks mirroring the paper's plots (a)-(d).

        Cells whose reference optimum or Aε* run tripped a budget are
        marked with ``*`` — Theorem 2's guarantee does not apply to them.
        """
        blocks = []
        epsilons = sorted({p.epsilon for p in self.points})
        ccrs = sorted({p.ccr for p in self.points})
        any_capped = False
        for eps in epsilons:
            for metric, fmt, plot in (
                ("deviation_pct", "{:.2f}", "% deviation from optimal"),
                ("time_ratio", "{:.3f}", "time ratio Aε*/A*"),
            ):
                sizes = sorted({p.size for p in self.points if p.epsilon == eps})
                rows = []
                for size in sizes:
                    row: list[object] = [size]
                    for ccr in ccrs:
                        match = [
                            p for p in self.points
                            if p.epsilon == eps and p.ccr == ccr and p.size == size
                        ]
                        if not match:
                            row.append(None)
                        else:
                            cell = fmt.format(getattr(match[0], metric))
                            if not match[0].proven:
                                any_capped = True
                                cell += "*"
                            row.append(cell)
                    rows.append(row)
                blocks.append(
                    render_table(
                        ["Size"] + [f"CCR={c}" for c in ccrs],
                        rows,
                        title=f"Figure 7 — {plot}, ε = {eps} (16 PPEs simulated)",
                    )
                )
        out = "\n\n".join(blocks)
        if any_capped:
            out += "\n\n(* = budget-capped run; Theorem-2 guarantee not applicable)"
        return out


def run_figure7(
    suite: WorkloadSuite | None = None,
    config: ExperimentConfig | None = None,
    cache: OptimumCache | None = None,
    *,
    num_ppes: int = 16,
    topology: str = "mesh",
) -> Figure7Result:
    """Run parallel Aε* vs parallel A* across the workload."""
    if suite is None:
        suite = paper_suite()
    if config is None:
        config = ExperimentConfig()
    if cache is None:
        cache = OptimumCache(config=config)

    spec = MachineSpec(num_ppes=num_ppes, topology=topology)
    points: list[Figure7Point] = []
    for inst in suite:
        optimal_length = cache.optimal_length(inst)
        optimal_proven = cache.is_proven(inst)
        exact = parallel_astar_schedule(
            inst.graph, inst.system, spec, budget=config.budget()
        )
        for eps in config.epsilons:
            approx = parallel_astar_schedule(
                inst.graph,
                inst.system,
                spec,
                epsilon=eps,
                budget=config.budget(),
            )
            length = approx.result.length
            deviation = (
                100.0 * (length - optimal_length) / optimal_length
                if optimal_length > 0
                else 0.0
            )
            ratio = (
                approx.makespan_units / exact.makespan_units
                if exact.makespan_units > 0
                else 1.0
            )
            points.append(
                Figure7Point(
                    ccr=inst.ccr,
                    size=inst.size,
                    epsilon=eps,
                    optimal_length=optimal_length,
                    approx_length=length,
                    deviation_pct=deviation,
                    time_ratio=ratio,
                    within_bound=length <= (1.0 + eps) * optimal_length + 1e-6,
                    proven=optimal_proven and approx.result.bound != float("inf"),
                )
            )
    return Figure7Result(points=points)
