"""repro — Optimal and near-optimal DAG scheduling via A* search.

A production-quality reproduction of:

    Ishfaq Ahmad and Yu-Kwong Kwok, "Optimal and Near-Optimal Allocation
    of Precedence-Constrained Tasks to Parallel Processors: Defying the
    High Complexity Using Effective Search Techniques", ICPP 1998.

Quickstart
----------
>>> from repro import TaskGraph, ProcessorSystem, astar_schedule
>>> g = TaskGraph([2, 3, 3, 4, 5, 2], {(0, 1): 1, (0, 2): 1, (0, 3): 2,
...                                     (1, 4): 1, (2, 4): 1, (3, 5): 4,
...                                     (4, 5): 5})
>>> result = astar_schedule(g, ProcessorSystem.ring(3))
>>> result.schedule.length
14.0

Public surface
--------------
* problem model: :class:`TaskGraph`, :class:`ProcessorSystem`,
  :class:`Schedule`;
* exact schedulers: :func:`astar_schedule` (serial A*),
  :func:`bnb_schedule` (depth-first B&B),
  :func:`parallel_astar_schedule` (simulated parallel A*),
  :func:`multiprocessing_astar_schedule` (real cores, static
  partition), :func:`hda_astar_schedule` (real cores, hash-distributed
  shared-incumbent HDA*);
* approximate scheduler: :func:`focal_schedule` (Aε*, ε-admissible);
* heuristics: :func:`list_schedule`, :func:`insertion_list_schedule`,
  :func:`cpmisf_schedule`;
* baseline: :func:`chen_yu_schedule`;
* service layer: :func:`instance_fingerprint`, :class:`ResultCache`,
  :func:`portfolio_schedule`, :func:`select_engine`, :func:`run_batch`
  (see :mod:`repro.service`);
* workloads and experiment drivers under :mod:`repro.workloads` and
  :mod:`repro.experiments`.
"""

from repro.baselines.chen_yu import chen_yu_schedule
from repro.errors import (
    BudgetExceeded,
    CycleError,
    GraphError,
    ReproError,
    ScheduleError,
    SearchError,
    WorkloadError,
)
from repro.graph.analysis import compute_levels, critical_path, graph_ccr
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.cpmisf import cpmisf_schedule
from repro.heuristics.insertion import insertion_list_schedule
from repro.heuristics.listsched import list_schedule
from repro.parallel.hda import hda_astar_schedule
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import measure_speedup
from repro.parallel.mp_backend import multiprocessing_astar_schedule
from repro.parallel.parallel_astar import parallel_astar_schedule
from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.graph.stg import load_stg, parse_stg, save_stg
from repro.graph.transform import reverse_graph, scale_to_ccr
from repro.schedule.metrics import ScheduleMetrics, analyze_schedule
from repro.search.astar import astar_schedule
from repro.search.bnb import bnb_schedule
from repro.search.enumerate import enumerate_optimal
from repro.search.focal import focal_schedule
from repro.search.idastar import idastar_schedule
from repro.search.weighted import weighted_astar_schedule
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult
from repro.service.batch import run_batch
from repro.service.cache import ResultCache
from repro.schedule.fingerprint import instance_fingerprint
from repro.service.portfolio import portfolio_schedule, select_engine
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

__version__ = "1.0.0"

__all__ = [
    "TaskGraph",
    "ProcessorSystem",
    "Schedule",
    "SearchResult",
    "PruningConfig",
    "Budget",
    "MachineSpec",
    "astar_schedule",
    "focal_schedule",
    "bnb_schedule",
    "idastar_schedule",
    "weighted_astar_schedule",
    "enumerate_optimal",
    "analyze_schedule",
    "ScheduleMetrics",
    "reverse_graph",
    "scale_to_ccr",
    "parse_stg",
    "load_stg",
    "save_stg",
    "parallel_astar_schedule",
    "instance_fingerprint",
    "portfolio_schedule",
    "select_engine",
    "run_batch",
    "ResultCache",
    "multiprocessing_astar_schedule",
    "hda_astar_schedule",
    "chen_yu_schedule",
    "list_schedule",
    "insertion_list_schedule",
    "cpmisf_schedule",
    "measure_speedup",
    "compute_levels",
    "critical_path",
    "graph_ccr",
    "paper_example_dag",
    "paper_example_system",
    "render_gantt",
    "validate_schedule",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "SearchError",
    "BudgetExceeded",
    "WorkloadError",
    "__version__",
]
