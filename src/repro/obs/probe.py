"""Search-progress probe: convergence timelines for the engine loops.

Engines call ``probe.tick(expanded, open_size, incumbent, lower)`` once
per expansion; the probe records a :class:`TimelineSample` every
``every`` expansions (plus a final sample via :meth:`finish`), giving a
time-series of ``(wall_time, expansions, open_size, incumbent,
lower_bound)`` that lands on ``SearchResult.timeline``.

The recorded series is monotone by construction — wall time and
expansions are non-decreasing, the incumbent is a running minimum and
the lower bound a running maximum (the tightest proven floor so far) —
so downstream consumers can plot convergence without re-sorting or
clamping, and the property tests can assert monotonicity uniformly
across engines regardless of how each engine's internal bound evolves.

When no probe is passed the engines' only overhead is one
``is not None`` check per expansion (gated by ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import math
import time
from typing import NamedTuple

__all__ = ["SearchProbe", "TimelineSample", "DEFAULT_PROBE_INTERVAL"]

#: Default sampling interval (expansions between samples).
DEFAULT_PROBE_INTERVAL = 4096


class TimelineSample(NamedTuple):
    """One convergence sample (all fields monotone along the series)."""

    wall_time: float     #: seconds since the probe started
    expansions: int      #: states expanded so far (incl. probe base)
    open_size: int       #: live frontier size at sample time
    incumbent: float     #: best complete schedule length so far (inf if none)
    lower_bound: float   #: tightest proven lower bound so far

    def as_dict(self) -> dict[str, float | None]:
        """JSON-safe form: non-finite values become ``None`` so trace
        lines stay strict JSON (``json.dumps`` would emit the
        non-standard ``Infinity`` token otherwise)."""
        return {
            "wall_time": self.wall_time,
            "expansions": self.expansions,
            "open_size": self.open_size,
            "incumbent": self.incumbent if math.isfinite(self.incumbent)
            else None,
            "lower_bound": self.lower_bound if math.isfinite(self.lower_bound)
            else None,
        }


class SearchProbe:
    """Samples engine progress every ``every`` expansions.

    One probe serves one logical solve; a portfolio running several
    stages back-to-back calls :meth:`rebase` between stages so the
    expansion axis keeps accumulating across engines.
    """

    __slots__ = ("every", "samples", "_t0", "_next_due", "_base",
                 "_best", "_floor")

    def __init__(self, every: int = DEFAULT_PROBE_INTERVAL) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self.every = every
        self.samples: list[TimelineSample] = []
        self._t0 = time.perf_counter()
        self._next_due = every
        self._base = 0          # expansions accumulated by earlier stages
        self._best = math.inf   # running min incumbent
        self._floor = 0.0       # running max lower bound

    def tick(
        self, expanded: int, open_size: int,
        incumbent: float, lower_bound: float,
    ) -> None:
        """Record a sample if ``expanded`` reached the next interval."""
        if expanded < self._next_due:
            return
        self._next_due = expanded + self.every
        self._record(expanded, open_size, incumbent, lower_bound)

    def finish(
        self, expanded: int, open_size: int,
        incumbent: float, lower_bound: float,
    ) -> None:
        """Record the final sample (always, regardless of interval)."""
        self._record(expanded, open_size, incumbent, lower_bound)

    def _record(
        self, expanded: int, open_size: int,
        incumbent: float, lower_bound: float,
    ) -> None:
        if incumbent < self._best:
            self._best = incumbent
        if lower_bound > self._floor:
            self._floor = lower_bound
        wall = time.perf_counter() - self._t0
        expansions = self._base + expanded
        if self.samples:
            # Merged worker samples carry approximate clocks; never let
            # a locally-computed sample step backwards past them.
            last = self.samples[-1]
            wall = max(wall, last.wall_time)
            expansions = max(expansions, last.expansions)
        self.samples.append(TimelineSample(
            wall_time=wall,
            expansions=expansions,
            open_size=open_size,
            incumbent=self._best,
            lower_bound=self._floor,
        ))

    def record_at(
        self, wall_time: float, expansions: int, open_size: int,
        incumbent: float, lower_bound: float,
    ) -> None:
        """Append a sample with an explicit wall time (coordinator merge).

        Used when reconstructing a global timeline from worker-local
        buffers whose clocks are approximate offsets: the same monotone
        clamps apply (``expansions`` is engine-local, the stage base is
        added here too), and the wall time additionally clamps to the
        last recorded sample so merged series stay non-decreasing.
        """
        expansions = self._base + expansions
        if incumbent < self._best:
            self._best = incumbent
        if lower_bound > self._floor:
            self._floor = lower_bound
        if self.samples:
            last = self.samples[-1]
            wall_time = max(wall_time, last.wall_time)
            expansions = max(expansions, last.expansions)
        self.samples.append(TimelineSample(
            wall_time=wall_time,
            expansions=expansions,
            open_size=open_size,
            incumbent=self._best,
            lower_bound=self._floor,
        ))

    def elapsed(self) -> float:
        """Seconds since this probe started (its wall-time origin)."""
        return time.perf_counter() - self._t0

    def rebase(self, stage_expansions: int) -> None:
        """Advance the expansion axis past a completed stage.

        Call between portfolio stages with the finished stage's
        ``states_expanded``: the next stage's engine restarts its own
        expansion counter at zero, but the timeline keeps counting
        total work across the whole solve.
        """
        self._base += int(stage_expansions)
        self._next_due = self.every

    def timeline(self) -> tuple[TimelineSample, ...]:
        """The recorded series (immutable snapshot)."""
        return tuple(self.samples)
