"""Structured span/event tracing to JSONL.

One :class:`Tracer` owns a sink (a path/file for JSONL output, or an
in-memory buffer for worker processes) and hands out spans::

    tracer = Tracer(path="run.jsonl")
    with tracer.span("portfolio.exact", attrs={"engine": "astar"}):
        ...
    tracer.close()

Each span emits two records — ``span_start`` and ``span_end`` (the end
record carries ``dur`` seconds) — plus point ``event`` records.  Every
record is one JSON object per line::

    {"v": 1, "kind": "span_start", "ts": 1723...,
     "id": "1a2b.3", "parent": "1a2b.1", "name": "portfolio.exact",
     "attrs": {"engine": "astar"}}

Ids are ``"<pid-hex>.<seq>"`` so records merged from several processes
(HDA* workers, solver-pool workers) never collide.  The *current* span
is tracked in a ``contextvars.ContextVar``, so nesting is correct
across threads and asyncio tasks; cross-process children link up by
passing the parent span id explicitly (``Tracer(root=...)``).

The disabled path is :data:`null_tracer` — its ``span`` returns a
shared no-op context manager, so instrumented code needs no ``if``
guards and costs a method call only when actually traced.
"""

from __future__ import annotations

import contextvars
import io
import json
import os
import threading
import time
from typing import Any, Iterator, Mapping

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "null_tracer",
    "validate_trace_lines",
]

TRACE_SCHEMA_VERSION = 1

_REQUIRED_KEYS = {"v", "kind", "ts", "name"}
_KINDS = {"span_start", "span_end", "event"}

# Process-global span sequence: several Tracer instances can coexist in
# one process (e.g. a buffering tracer per batch item solved inline)
# and their records may merge into one file — ids must stay unique
# per *process*, not per tracer.
_seq_lock = threading.Lock()
_seq = 0


def _next_seq() -> int:
    global _seq
    with _seq_lock:
        _seq += 1
        return _seq


class _NullSpan:
    """Reusable no-op context manager; also quacks like a span."""

    __slots__ = ()
    id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def span(
        self, name: str, attrs: Mapping[str, Any] | None = None,
        parent: str | None = None,
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(
        self, name: str, attrs: Mapping[str, Any] | None = None,
        parent: str | None = None,
    ) -> None:
        return None

    def absorb(self, records: list[dict] | None) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared disabled tracer — the default everywhere tracing is optional.
null_tracer = NullTracer()


class _Span:
    """A live span; context manager that emits start/end records."""

    __slots__ = ("_tracer", "id", "name", "_token", "_t0")

    def __init__(self, tracer: "Tracer", span_id: str, name: str) -> None:
        self._tracer = tracer
        self.id = span_id
        self.name = name
        self._token: contextvars.Token | None = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        self._token = self._tracer._current.set(self.id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        if self._token is not None:
            self._tracer._current.reset(self._token)
        attrs = {"error": repr(exc)} if exc is not None else None
        self._tracer._emit(
            "span_end", self.name, span_id=self.id, dur=dur, attrs=attrs
        )


class Tracer:
    """Emits span/event records to a JSONL sink or an in-memory buffer.

    Parameters
    ----------
    path:
        JSONL output file (appended, line-buffered-ish: each record is
        written with one ``write`` call under a lock and flushed).
    sink:
        An already-open text file object (takes precedence over
        ``path``; not closed by :meth:`close`).
    root:
        Parent span id for this tracer's top-level spans — used by
        worker processes so their buffered records attach under the
        coordinator's span when merged.

    With neither ``path`` nor ``sink`` the tracer buffers records in
    :attr:`buffer`; ship that list over a queue and feed it to the
    coordinator's tracer via :meth:`absorb`.
    """

    enabled = True

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        sink: io.TextIOBase | None = None,
        root: str | None = None,
    ) -> None:
        self._own_file = None
        if sink is not None:
            self._sink = sink
        elif path is not None:
            self._own_file = open(path, "a", encoding="utf-8")
            self._sink = self._own_file
        else:
            self._sink = None
        self.buffer: list[dict] = [] if self._sink is None else None  # type: ignore[assignment]
        self._root = root
        self._pid_prefix = f"{os.getpid():x}"
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar[str | None] = (
            contextvars.ContextVar(f"repro_obs_span_{id(self):x}", default=None)
        )

    # -- record plumbing -----------------------------------------------------

    def _next_id(self) -> str:
        return f"{self._pid_prefix}.{_next_seq()}"

    def _emit(
        self,
        kind: str,
        name: str,
        *,
        span_id: str | None = None,
        parent: str | None = None,
        dur: float | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        record: dict[str, Any] = {
            "v": TRACE_SCHEMA_VERSION,
            "kind": kind,
            "ts": time.time(),
            "name": name,
        }
        if span_id is not None:
            record["id"] = span_id
        if parent is not None:
            record["parent"] = parent
        if dur is not None:
            record["dur"] = dur
        if attrs:
            record["attrs"] = dict(attrs)
        self.write(record)

    def write(self, record: dict) -> None:
        """Append one raw record to the sink or buffer."""
        if self._sink is None:
            with self._lock:
                self.buffer.append(record)
            return
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            self._sink.write(line)
            self._sink.flush()

    # -- public API ----------------------------------------------------------

    def current_span_id(self) -> str | None:
        """Id of the innermost open span in this context (or the root)."""
        got = self._current.get()
        return got if got is not None else self._root

    def span(
        self, name: str, attrs: Mapping[str, Any] | None = None,
        parent: str | None = None,
    ) -> _Span:
        """Open a span; use as a context manager."""
        span_id = self._next_id()
        if parent is None:
            parent = self.current_span_id()
        self._emit(
            "span_start", name, span_id=span_id, parent=parent, attrs=attrs
        )
        return _Span(self, span_id, name)

    def event(
        self, name: str, attrs: Mapping[str, Any] | None = None,
        parent: str | None = None,
    ) -> None:
        """Emit a point event under the current (or given) span."""
        if parent is None:
            parent = self.current_span_id()
        self._emit("event", name, parent=parent, attrs=attrs)

    def absorb(self, records: list[dict] | None) -> None:
        """Merge records buffered by another tracer (worker process).

        Records keep their original ids — the pid prefix guarantees no
        collision — and their parent links, so a worker tracer created
        with ``root=<coordinator span id>`` slots in under that span.
        """
        if not records:
            return
        for record in records:
            self.write(record)

    def drain(self) -> list[dict]:
        """Return and clear the in-memory buffer (buffering tracers)."""
        if self._sink is not None:
            return []
        with self._lock:
            out, self.buffer = self.buffer, []
        return out

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._own_file is not None:
            self._own_file.close()
            self._own_file = None
            self._sink = None
            self.buffer = []


def validate_trace_lines(lines: Iterator[str]) -> tuple[int, list[str]]:
    """Validate a JSONL trace: parseability, schema, and span nesting.

    Returns ``(record_count, problems)``.  Checks every line parses as
    a JSON object with the required keys, kinds are known, each
    ``span_end`` matches an earlier ``span_start`` with the same id
    (exactly once), and every ``parent`` reference names a span that
    was started earlier in the file.
    """
    problems: list[str] = []
    started: dict[str, str] = {}
    ended: set[str] = set()
    count = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: not a JSON object")
            continue
        missing = _REQUIRED_KEYS - set(record)
        if missing:
            problems.append(f"line {lineno}: missing keys {sorted(missing)}")
            continue
        kind = record["kind"]
        if kind not in _KINDS:
            problems.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        parent = record.get("parent")
        if parent is not None and parent not in started:
            problems.append(
                f"line {lineno}: parent {parent!r} never started"
            )
        if kind == "span_start":
            span_id = record.get("id")
            if not span_id:
                problems.append(f"line {lineno}: span_start without id")
            elif span_id in started:
                problems.append(f"line {lineno}: duplicate span id {span_id!r}")
            else:
                started[span_id] = record["name"]
        elif kind == "span_end":
            span_id = record.get("id")
            if span_id not in started:
                problems.append(
                    f"line {lineno}: span_end for unknown id {span_id!r}"
                )
            elif span_id in ended:
                problems.append(
                    f"line {lineno}: span {span_id!r} ended twice"
                )
            else:
                ended.add(span_id)
    for span_id, name in started.items():
        if span_id not in ended:
            problems.append(f"span {span_id!r} ({name}) never ended")
    return count, problems
