"""Dependency-free telemetry for the solver stack.

Three layers, each usable on its own:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms with a Prometheus text-exposition
  renderer and histogram-derived quantiles (the daemon's ``/metrics``
  endpoint serves it via ``?format=prometheus``).
* :mod:`repro.obs.trace` — a structured span/event layer emitting JSONL
  trace records with ids/parent ids.  Spans nest via ``contextvars`` so
  they work across threads and asyncio tasks; worker processes buffer
  events locally and the coordinator merges them (HDA* workers, pool
  workers).
* :mod:`repro.obs.probe` — a sampling hook for the search main loops
  recording ``(wall_time, expansions, open_size, incumbent,
  lower_bound)`` every N expansions; the series lands on
  ``SearchResult.timeline`` so convergence is inspectable per solve.

Everything here is pay-for-what-you-use: with no tracer installed and
no probe passed, the only hot-path cost is an ``is not None`` check
(gated at ≤3% by ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    EXPANSION_BUCKETS,
    LATENCY_BUCKETS,
)
from repro.obs.probe import SearchProbe, TimelineSample
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    null_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "EXPANSION_BUCKETS",
    "SearchProbe",
    "TimelineSample",
    "Tracer",
    "NullTracer",
    "null_tracer",
    "TRACE_SCHEMA_VERSION",
]
