"""Counters, gauges and fixed-bucket histograms with Prometheus output.

A deliberately small, stdlib-only re-implementation of the parts of a
metrics client the daemon needs: monotone counters, set-style gauges,
and cumulative-bucket histograms whose quantiles (p50/p99) are derived
by linear interpolation inside the owning bucket — the same estimate a
Prometheus ``histogram_quantile`` query would produce from the scraped
buckets, so dashboards and the JSON ``/metrics`` payload agree.

All instruments are thread-safe (one lock per instrument, taken only on
write and snapshot).  Label support is the common subset: an instrument
family holds one child per label-value tuple, and the renderer escapes
label values per the text exposition format.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "EXPANSION_BUCKETS",
]

#: Request/queue/solve latency buckets (seconds).  Spans sub-millisecond
#: cache hits through multi-minute exact searches.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Per-solve expansion-count buckets (states expanded).
EXPANSION_BUCKETS: tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(val)}"' for key, val in labels
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram with derived quantiles.

    ``buckets`` are the *upper bounds* of each bucket in ascending
    order; an implicit ``+Inf`` bucket is always appended.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            counts = list(self._counts)
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating in its bucket.

        Returns ``nan`` when empty.  Values in the +Inf bucket clamp to
        the largest finite bound (same convention as Prometheus).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cumulative = self.cumulative_counts()
        total = cumulative[-1][1]
        if total == 0:
            return math.nan
        rank = q * total
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in cumulative:
            if cum >= rank:
                if math.isinf(bound):
                    return self.buckets[-1]
                if cum == prev_cum:
                    return bound
                frac = (rank - prev_cum) / (cum - prev_cum)
                return prev_bound + frac * (bound - prev_bound)
            prev_bound, prev_cum = bound, cum
        return self.buckets[-1]

    def summary(self) -> dict[str, float | None]:
        """p50/p99/count/sum snapshot for the JSON ``/metrics`` payload.

        Quantiles of an empty histogram are ``None`` (not ``nan``) so
        the payload stays strict JSON.
        """
        p50 = self.quantile(0.5)
        p99 = self.quantile(0.99)
        return {
            "count": float(self._count),
            "sum": self._sum,
            "p50": None if math.isnan(p50) else p50,
            "p99": None if math.isnan(p99) else p99,
        }


_LabelKey = tuple[tuple[str, str], ...]


class _Family:
    """One named metric family holding a child per label set."""

    __slots__ = ("name", "help", "kind", "buckets", "children", "_lock")

    def __init__(
        self, name: str, help_text: str, kind: str,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.buckets = buckets
        self.children: dict[_LabelKey, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def child(self, labels: _LabelKey):
        with self._lock:
            got = self.children.get(labels)
            if got is None:
                if self.kind == "counter":
                    got = Counter()
                elif self.kind == "gauge":
                    got = Gauge()
                else:
                    got = Histogram(self.buckets or LATENCY_BUCKETS)
                self.children[labels] = got
            return got


def _label_key(labels: Mapping[str, str] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create and cheap to
    call repeatedly — call sites do not need to stash instrument
    references (though hot paths may).  ``render_prometheus`` emits the
    whole registry in text exposition format 0.0.4.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self, name: str, help_text: str, kind: str,
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, help_text, kind, buckets)
                self._families[name] = fam
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}"
                )
            return fam

    def counter(
        self, name: str, help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        fam = self._family(name, help_text, "counter")
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        fam = self._family(name, help_text, "gauge")
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def histogram(
        self, name: str, help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        fam = self._family(name, help_text, "histogram", tuple(buckets))
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        """p50/p99 snapshots of every histogram, keyed by family name
        (label values joined into the key for labelled families)."""
        out: dict[str, dict[str, float]] = {}
        for fam in list(self._families.values()):
            if fam.kind != "histogram":
                continue
            for labels, child in list(fam.children.items()):
                key = fam.name
                if labels:
                    key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                out[key] = child.summary()  # type: ignore[union-attr]
        return out

    def render_prometheus(self, extra: str = "") -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for fam in list(self._families.values()):
            full = f"{self.namespace}_{fam.name}"
            if fam.help:
                lines.append(f"# HELP {full} {fam.help}")
            lines.append(f"# TYPE {full} {fam.kind}")
            for labels, child in sorted(fam.children.items()):
                suffix = _labels_suffix(labels)
                if fam.kind in ("counter", "gauge"):
                    lines.append(
                        f"{full}{suffix} {_format_value(child.value)}"
                    )
                    continue
                hist = child  # type: ignore[assignment]
                for bound, cum in hist.cumulative_counts():
                    le = _format_value(bound) if math.isfinite(bound) else "+Inf"
                    bucket_labels = labels + (("le", le),)
                    lines.append(
                        f"{full}_bucket{_labels_suffix(bucket_labels)} {cum}"
                    )
                lines.append(f"{full}_sum{suffix} {_format_value(hist.sum)}")
                lines.append(f"{full}_count{suffix} {hist.count}")
        if extra:
            lines.append(extra.rstrip("\n"))
        return "\n".join(lines) + "\n"
