"""Render a JSONL trace file as a human-readable report.

Backs the ``repro trace <file>`` CLI command: per-span duration
aggregates, portfolio stage attribution (share of traced solve time per
``portfolio.*`` span), and the convergence table recorded by the search
progress probe (``search.timeline`` events).
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Iterable, TextIO

from repro.obs.trace import validate_trace_lines

__all__ = ["load_trace", "render_report", "check_trace"]

#: Cap on rows in the rendered convergence table (the trace keeps all).
_TIMELINE_TABLE_ROWS = 32


def load_trace(lines: Iterable[str]) -> list[dict]:
    """Parse JSONL lines into records, skipping blanks.

    Raises ``ValueError`` on the first unparseable line — traces are
    machine-written, so a bad line means truncation or corruption.
    """
    records: list[dict] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: not a JSON object")
        records.append(record)
    return records


def _span_durations(records: list[dict]) -> dict[str, list[float]]:
    """Durations of completed spans grouped by span name."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for record in records:
        if record.get("kind") == "span_end" and "dur" in record:
            by_name[record["name"]].append(float(record["dur"]))
    return by_name


def _fmt_seconds(s: float) -> str:
    if s < 0.001:
        return f"{s * 1e6:.0f}us"
    if s < 1.0:
        return f"{s * 1e3:.1f}ms"
    return f"{s:.3f}s"


def _fmt_bound(x: Any) -> str:
    if x is None:
        return "inf"  # as_dict() maps non-finite values to null
    try:
        v = float(x)
    except (TypeError, ValueError):
        return str(x)
    if v == float("inf"):
        return "inf"
    return f"{v:g}"


def render_report(records: list[dict], out: TextIO) -> None:
    """Write the trace report for ``records`` to ``out``."""
    spans = _span_durations(records)
    events = [r for r in records if r.get("kind") == "event"]
    n_spans = sum(len(v) for v in spans.values())
    out.write(
        f"trace: {len(records)} records, {n_spans} completed spans, "
        f"{len(events)} events\n"
    )

    if spans:
        out.write("\nspan durations\n")
        out.write(
            f"  {'name':<28} {'count':>5} {'total':>10} "
            f"{'mean':>10} {'max':>10}\n"
        )
        for name in sorted(spans, key=lambda n: -sum(spans[n])):
            durs = spans[name]
            out.write(
                f"  {name:<28} {len(durs):>5} {_fmt_seconds(sum(durs)):>10} "
                f"{_fmt_seconds(sum(durs) / len(durs)):>10} "
                f"{_fmt_seconds(max(durs)):>10}\n"
            )

    stage_names = [n for n in spans if n.startswith("portfolio.")]
    if stage_names:
        total = sum(sum(spans[n]) for n in stage_names)
        out.write("\nportfolio stage attribution\n")
        for name in sorted(stage_names, key=lambda n: -sum(spans[n])):
            share = sum(spans[name]) / total if total else 0.0
            out.write(
                f"  {name:<28} {_fmt_seconds(sum(spans[name])):>10} "
                f"{share * 100:5.1f}%\n"
            )

    timelines = [e for e in events if e.get("name") == "search.timeline"]
    for idx, event in enumerate(timelines):
        attrs = event.get("attrs", {})
        samples = attrs.get("samples", [])
        label = attrs.get("label", f"#{idx + 1}")
        out.write(f"\nconvergence timeline [{label}] ({len(samples)} samples)\n")
        if len(samples) > _TIMELINE_TABLE_ROWS:
            # Even downsampling that keeps the first and last sample —
            # the table shows the shape, the trace file keeps the data.
            step = (len(samples) - 1) / (_TIMELINE_TABLE_ROWS - 1)
            samples = [
                samples[round(i * step)]
                for i in range(_TIMELINE_TABLE_ROWS)
            ]
            out.write(f"  (showing {_TIMELINE_TABLE_ROWS} evenly spaced)\n")
        out.write(
            f"  {'wall':>10} {'expansions':>12} {'open':>10} "
            f"{'incumbent':>10} {'lower':>10}\n"
        )
        for s in samples:
            out.write(
                f"  {_fmt_seconds(float(s['wall_time'])):>10} "
                f"{int(s['expansions']):>12} {int(s['open_size']):>10} "
                f"{_fmt_bound(s['incumbent']):>10} "
                f"{_fmt_bound(s['lower_bound']):>10}\n"
            )

    job_events = [
        e for e in events
        if str(e.get("name", "")).startswith(("job.", "cache."))
    ]
    if job_events:
        counts: dict[str, int] = defaultdict(int)
        for e in job_events:
            counts[e["name"]] += 1
        out.write("\ndaemon events\n")
        for name in sorted(counts):
            out.write(f"  {name:<28} {counts[name]:>5}\n")


def check_trace(lines: Iterable[str], out: TextIO) -> int:
    """Validate a trace; print problems; return a process exit code."""
    count, problems = validate_trace_lines(iter(lines))
    if problems:
        out.write(f"INVALID: {len(problems)} problem(s) in {count} records\n")
        for problem in problems[:50]:
            out.write(f"  {problem}\n")
        if len(problems) > 50:
            out.write(f"  ... and {len(problems) - 50} more\n")
        return 1
    out.write(f"OK: {count} records, schema v1, all spans nest correctly\n")
    return 0
