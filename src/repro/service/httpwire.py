"""Shared HTTP/1.1 wire helpers for the daemon and the fleet router.

The solver daemon (:mod:`repro.service.server`) and the shard router
(:mod:`repro.service.router`) speak the same deliberately-minimal
dialect: stdlib asyncio streams, one request per connection, JSON (or
pre-rendered Prometheus text) out, ``Connection: close`` always.  This
module is that dialect in one place — request parsing with the same
limits and error statuses on both listeners, response rendering, and
the tiny async client the router uses to forward requests and probe
shard health.

Nothing here knows about jobs, shards, or solving; it is framing only.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "MAX_BODY",
    "MAX_HEADERS",
    "READ_TIMEOUT",
    "STATUS_TEXT",
    "BadRequest",
    "read_request",
    "render_response",
    "deliver_response",
    "fetch",
]

#: Largest accepted request body (a v=1000 dense graph is ~10 MB).
MAX_BODY = 32 * 1024 * 1024
#: Header-line cap per request.
MAX_HEADERS = 100
#: Seconds an idle or trickling client may take to deliver one request
#: before the connection is dropped (bounds handler-task lifetime).
READ_TIMEOUT = 30.0

STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class BadRequest(Exception):
    """Unparseable request; carries the HTTP status to answer with."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = MAX_BODY,
    max_headers: int = MAX_HEADERS,
) -> tuple[str, str, bytes]:
    """Read one HTTP/1.1 request: line, headers, body."""
    request_line = await reader.readline()
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise BadRequest("malformed request line")
    method, path = parts[0].upper(), parts[1]

    content_length = 0
    for _ in range(max_headers):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise BadRequest("bad Content-Length") from None
            if content_length < 0:
                raise BadRequest("bad Content-Length")
    else:
        raise BadRequest(f"more than {max_headers} header lines")
    if content_length > max_body:
        raise BadRequest(f"body exceeds {max_body} bytes", status=413)
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, path, body


def render_response(
    status: int,
    payload: dict[str, Any] | str,
    *,
    extra_headers: str = "",
) -> bytes:
    """Serialize one response: head + body, ready to write.

    A ``str`` payload is pre-rendered text (the Prometheus exposition
    endpoint); everything else is JSON.  ``extra_headers`` is a
    pre-formatted CRLF-terminated block (e.g. ``"Retry-After: 5\\r\\n"``).
    """
    if isinstance(payload, str):
        body = payload.encode()
        ctype = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode()
        ctype = "application/json"
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra_headers}"
        f"Connection: close\r\n\r\n"
    ).encode()
    return head + body


async def deliver_response(
    writer: asyncio.StreamWriter, raw: bytes
) -> None:
    """Write a rendered response and close, absorbing a gone client."""
    try:
        writer.write(raw)
        await writer.drain()
    except (ConnectionError, BrokenPipeError):
        pass  # client went away mid-response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    *,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One async HTTP round-trip: ``(status, lowercase headers, body)``.

    The router's forwarding/probing primitive.  Matches the servers'
    one-request-per-connection dialect: fresh connection, explicit
    ``Connection: close``, body read to Content-Length (or EOF when
    the peer sent none).  Transport failures surface as ``OSError`` /
    ``asyncio.TimeoutError`` for the caller's failover logic; this
    never retries on its own.
    """

    async def _roundtrip() -> tuple[int, dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = body or b""
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + payload)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line from {host}:{port}: "
                    f"{status_line[:80]!r}"
                )
            status = int(parts[1])

            headers: dict[str, str] = {}
            for _ in range(MAX_HEADERS):
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            if length is not None and length.isdigit():
                data = await reader.readexactly(int(length))
            else:
                data = await reader.read()
            return status, headers, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass  # response already read; peer reset on close

    return await asyncio.wait_for(_roundtrip(), timeout=timeout)
