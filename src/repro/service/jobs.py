"""Job lifecycle for the solver daemon: admission, dedupe, execution.

The HTTP layer (:mod:`repro.service.server`) is deliberately thin; this
module holds the actual serving semantics, framework-free except for
``asyncio`` primitives, so tests can drive it without sockets.

A submitted request becomes a :class:`Job` and moves through a small
state machine::

                      ┌────────────────────────────┐
    submit ── cache hit ──────────────────────────▶│
       │                                           │
       ├── duplicate of an in-flight job ──▶ queued (follower)
       │                                      │    │
       ├── queue full ──▶ rejected (429)      ▼    ▼
       └──▶ queued ──▶ running ──▶ done  /  failed

* **Cache hits** complete synchronously at submit time — they never
  consume a queue slot or a worker.
* **Dedupe runs in front of the queue**: a request whose fingerprint
  matches a queued or running job attaches to it as a *follower* and
  fans out when the primary completes (in its own node numbering, via
  the canonical assignment).  Followers consume no queue slot either —
  admission control bounds the number of *unique* pending problems, so
  a burst of identical requests can never 429 itself while its twin is
  already being solved.
* **Admission control** is a bounded queue: when ``queue_limit`` unique
  jobs are already pending, :meth:`JobManager.submit` raises
  :class:`QueueFull` and the server answers 429.
* **Drain** (:meth:`JobManager.drain`) flips the manager into a mode
  where submissions raise :class:`Draining` (503), then waits for every
  accepted job — queued, running, and followers — to finish.

Execution happens on a persistent
:class:`~repro.parallel.mp_backend.SolverPool`: runner coroutines pull
jobs off the queue and await :func:`repro.service.batch._worker_solve`
futures on the pool's executor, so the event loop stays responsive
while searches run on other cores.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import Any, NamedTuple

from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.metrics import (
    EXPANSION_BUCKETS,
    MetricsRegistry,
    _escape_label_value,
    _format_value,
)
from repro.obs.trace import Tracer, null_tracer
from repro.parallel.mp_backend import SolverPool
from repro.schedule.schedule import Schedule
from repro.search.costs import COST_FUNCTIONS
from repro.service.batch import BatchItem, _job_for, _worker_solve, item_from_request
from repro.service.cache import CacheEntry, ResultCache
from repro.schedule.fingerprint import (
    assignment_from_canonical,
    canonical_assignment,
    canonical_order,
    instance_fingerprint,
)
from repro.service.portfolio import select_cost

__all__ = ["Job", "JobManager", "PreparedRequest", "QueueFull", "Draining"]

#: Job states (strings on purpose: they appear verbatim in API JSON).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


#: Sentinel distinguishing "no cache lookup happened yet" from "the
#: lookup ran and missed" in :meth:`JobManager.admit`.
_NO_LOOKUP = object()


class QueueFull(Exception):
    """Raised by :meth:`JobManager.submit` when admission control is at
    capacity (the server maps this to HTTP 429)."""


class Draining(Exception):
    """Raised by :meth:`JobManager.submit` once drain has begun (the
    server maps this to HTTP 503)."""


class PreparedRequest(NamedTuple):
    """The CPU-heavy, side-effect-free front half of a submission.

    Produced by :meth:`JobManager.prepare` (safe to run off the event
    loop — parsing and WL-refinement fingerprinting of a large graph
    take real CPU time) and consumed by :meth:`JobManager.admit` (cheap,
    loop-thread only, where all shared state is touched).
    """

    item: BatchItem
    fingerprint: str
    order: tuple[int, ...]
    options: dict[str, Any]


#: Per-request option keys a client may override, and — minus
#: ``require_proven``, which only gates cache reads — the keys that must
#: match for a request to ride another in-flight job as a follower.
_OVERRIDE_KEYS = (
    "deadline", "epsilon", "cost", "max_expansions", "mode",
    "require_proven", "solver_workers", "max_memory_mb", "preprocess",
)
_SOLVE_KEYS = (
    "deadline", "epsilon", "cost", "max_expansions", "mode",
    "solver_workers", "max_memory_mb", "preprocess",
)

#: Cap on the per-request HDA* worker override: untrusted request
#: bodies must not be able to fork an arbitrary number of processes.
_MAX_SOLVER_WORKERS = 16

#: Seconds a finished job waits for its cache write before completing
#: anyway (the put keeps running on the cache thread and may land
#: later).  Without this bound a wedged store would keep the job
#: active forever — and drain() blocks on every active job, so SIGTERM
#: shutdown would hang before the server-side close grace is reached.
_CACHE_PUT_GRACE = 10.0

#: Bounds for the adaptive ``Retry-After`` hint on 429/503 responses.
#: The floor keeps the hint a valid positive integer even on an idle
#: (draining) daemon; the ceiling keeps clients from parking for
#: minutes on a queue that drains in seconds once a long solve ends.
_RETRY_AFTER_MIN = 1
_RETRY_AFTER_MAX = 30

#: Smoothing factor for the solve-seconds EWMA behind the hint
#: (weight of the newest observation).
_SOLVE_EWMA_ALPHA = 0.2

#: Seconds the deep-readiness probe waits for the cache thread before
#: declaring the store wedged (a ``/healthz?deep=1`` answer must come
#: back well inside the router's probe timeout).
_DEEP_PROBE_TIMEOUT = 5.0


def _validate_options(options: dict[str, Any]) -> None:
    """Type- and bounds-check request-supplied solver options, so a bad
    request fails at submit (HTTP 400) instead of inside a pool worker
    (HTTP 500), and so a request body cannot amplify resource use
    beyond what the operator configured."""
    if options["mode"] not in ("portfolio", "auto"):
        raise ValueError(f"unknown mode {options['mode']!r}")
    cost = options["cost"]
    if cost != "auto" and cost not in COST_FUNCTIONS:
        raise ValueError(
            f"unknown cost {cost!r}; choose from "
            f"{['auto', *sorted(COST_FUNCTIONS)]}"
        )
    deadline = options["deadline"]
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or not deadline > 0:
            raise ValueError(f"deadline must be a positive number, got {deadline!r}")
    epsilon = options["epsilon"]
    if not isinstance(epsilon, (int, float)) or epsilon < 0:
        raise ValueError(f"epsilon must be a number >= 0, got {epsilon!r}")
    expansions = options["max_expansions"]
    if expansions is not None:
        if not isinstance(expansions, int) or isinstance(expansions, bool) \
                or expansions < 1:
            raise ValueError(
                f"max_expansions must be a positive integer, got {expansions!r}")
    workers = options["solver_workers"]
    if not isinstance(workers, int) or isinstance(workers, bool) \
            or not 1 <= workers <= _MAX_SOLVER_WORKERS:
        raise ValueError(
            f"solver_workers must be an integer in [1, {_MAX_SOLVER_WORKERS}],"
            f" got {workers!r}")
    memory = options["max_memory_mb"]
    if memory is not None:
        if not isinstance(memory, (int, float)) or isinstance(memory, bool) \
                or not memory > 0:
            raise ValueError(
                f"max_memory_mb must be a positive number, got {memory!r}")
    options["require_proven"] = bool(options["require_proven"])
    options["preprocess"] = bool(options["preprocess"])


class Job:
    """One accepted solve request and its progress through the service."""

    __slots__ = (
        "id", "name", "item", "fingerprint", "order", "options",
        "state", "via", "submitted", "started", "finished",
        "result", "error", "done",
    )

    def __init__(
        self,
        job_id: str,
        item: BatchItem,
        fingerprint: str,
        order: tuple[int, ...],
        options: dict[str, Any],
    ) -> None:
        self.id = job_id
        self.name = item.name
        self.item = item
        self.fingerprint = fingerprint
        self.order = order
        self.options = options
        self.state = QUEUED
        self.via: str | None = None  # "solve" | "cache" | "dedup"
        self.submitted = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.done = asyncio.Event()

    @property
    def active(self) -> bool:
        """True while the job still owes the caller an answer."""
        return self.state in (QUEUED, RUNNING)

    def snapshot(self) -> dict[str, Any]:
        """JSON view served by ``GET /v1/jobs/<id>``."""
        view: dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "status": self.state,
            "fingerprint": self.fingerprint,
            "submitted": self.submitted,
        }
        if self.started is not None:
            view["started"] = self.started
        if self.finished is not None:
            view["finished"] = self.finished
        if self.via is not None:
            view["via"] = self.via
        if self.result is not None:
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        return view


class JobManager:
    """Admission control, dedupe, caching, and pool dispatch for jobs.

    Parameters
    ----------
    pool:
        The persistent :class:`SolverPool` searches run on.  The manager
        borrows it; the server owns its lifetime.
    cache:
        Optional :class:`ResultCache` consulted at submit and written on
        completion.
    cache_executor:
        Optional single-worker executor all cache I/O is routed
        through, so a slow or stalled persistent store never blocks the
        event loop (``/healthz`` keeps answering during a wedged
        ``put``).  Borrowed — the server owns its lifetime.  ``None``
        keeps the historical synchronous calls (in-memory caches,
        embedded use, tests).
    queue_limit:
        Maximum *unique* jobs pending (queued, not yet running).
    deadline, epsilon, max_expansions, mode, require_proven,
    solver_workers, max_memory_mb, preprocess:
        Solver defaults; each may be overridden per request by the same
        field in the request object (``solver_workers`` is the HDA*
        worker count *per job* — it composes with the request pool, and
        competes with it for cores, so the default stays 1).
    history_limit:
        Completed jobs retained for ``GET /v1/jobs/<id>`` polling before
        eviction (oldest-finished first).
    tracer:
        Structured-trace sink (:mod:`repro.obs.trace`) for job lifecycle
        events (submit, start, done, dedupe fan-out, degraded answers)
        and cache get/put events; pool workers' buffered spans are
        absorbed here when their results return.  ``None`` disables
        tracing.
    probe_every:
        Convergence-sampling interval forwarded to every solve; the
        timelines come back as ``search.timeline`` trace events.
    shard_id:
        Identity of this daemon within a sharded fleet (see
        :mod:`repro.service.router`); surfaced in ``/metrics`` so the
        router and operators can attribute scraped numbers to a shard.
        ``None`` (standalone daemon) omits the field.
    """

    def __init__(
        self,
        pool: SolverPool,
        *,
        cache: ResultCache | None = None,
        cache_executor: ThreadPoolExecutor | None = None,
        queue_limit: int = 64,
        deadline: float | None = None,
        epsilon: float = 0.25,
        cost: str = "auto",
        max_expansions: int | None = 200_000,
        mode: str = "portfolio",
        require_proven: bool = False,
        solver_workers: int = 1,
        max_memory_mb: float | None = None,
        preprocess: bool = False,
        history_limit: int = 4096,
        tracer: Tracer | None = None,
        probe_every: int | None = None,
        shard_id: str | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.pool = pool
        self.cache = cache
        self.tracer = tracer if tracer is not None else null_tracer
        self.probe_every = probe_every
        self._cache_exec = cache_executor
        self.queue_limit = queue_limit
        self.defaults = {
            "deadline": deadline,
            "epsilon": epsilon,
            "cost": cost,
            "max_expansions": max_expansions,
            "mode": mode,
            "require_proven": require_proven,
            "solver_workers": solver_workers,
            "max_memory_mb": max_memory_mb,
            "preprocess": preprocess,
        }
        self.history_limit = history_limit
        self.shard_id = shard_id
        self.draining = False
        self.started_at = time.time()
        #: EWMA of fresh-solve wall seconds, feeding the adaptive
        #: ``Retry-After`` hint; ``None`` until the first solve lands.
        self._solve_ewma: float | None = None

        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        # fingerprint -> the most recent active primary for it.  Two
        # actives can share a fingerprint when their solver options
        # differ (no dedupe across options), so followers are grouped
        # by primary *job id*, not by fingerprint.
        self._inflight: dict[str, Job] = {}
        self._followers: dict[str, list[Job]] = {}  # primary id -> followers
        self._runners: list[asyncio.Task] = []
        self._running = 0
        self._seq = 0
        self.counters: dict[str, int] = {
            "submitted": 0,
            "accepted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "dedup_fanout": 0,
            "solved": 0,
            "pool_rebuilds": 0,
            "degraded": 0,
            "cache_errors": 0,
        }
        #: Per-cause counts of solve failures the degrade path absorbed
        #: (or, when no incumbent could be built, surfaced as errors).
        self.failures: dict[str, int] = {
            "broken_pool": 0,
            "worker_error": 0,
            "completion_error": 0,
        }
        self.engine_counts: dict[str, int] = {}
        #: Histogram home for the latency quantiles ``/metrics`` serves
        #: (JSON p50/p99 summaries and the Prometheus bucket series are
        #: derived from the same instruments).
        self.registry = MetricsRegistry()
        self._h_request = self.registry.histogram(
            "request_seconds",
            "End-to-end request latency: submit to finished.",
        )
        self._h_queue_wait = self.registry.histogram(
            "queue_wait_seconds",
            "Time accepted jobs wait queued before a runner starts them.",
        )
        self._h_expansions = self.registry.histogram(
            "solve_expansions",
            "States expanded per fresh solve.",
            buckets=EXPANSION_BUCKETS,
        )

    # -- cache I/O (dedicated thread when an executor is configured) ---------

    def _cache_get(self, fingerprint: str, require_proven: bool):
        if self.cache is None:
            return None
        try:
            return self.cache.get(fingerprint, require_proven=require_proven)
        except Exception:  # noqa: BLE001 - a broken store reads as a miss
            self.counters["cache_errors"] += 1
            return None

    def _cache_get_blocking(self, prepared: "PreparedRequest"):
        """Synchronous lookup for :meth:`submit`; routed through the
        cache executor when one is configured."""
        if self.cache is None:
            return None
        args = (prepared.fingerprint, prepared.options["require_proven"])
        if self._cache_exec is None:
            return self._cache_get(*args)
        return self._cache_exec.submit(self._cache_get, *args).result()

    async def cache_lookup(self, prepared: "PreparedRequest"):
        """Consult the cache for a prepared request, off the event loop.

        The server awaits this between :meth:`prepare` and
        :meth:`admit`.  Cache-touching requests queue FIFO on the
        single cache worker (that ordering is what keeps SQLite writes
        serialized), so a wedged store backs up cache lookups too —
        but the *loop* stays responsive: ``/healthz``, ``/metrics``,
        job polling, and already-admitted solves are unaffected, which
        is the contract the stalled-put regression test pins.  Returns
        the entry or ``None``.
        """
        if self.cache is None:
            return None
        return await self._cache_call(
            self._cache_get,
            prepared.fingerprint,
            prepared.options["require_proven"],
        )

    async def _cache_call(self, fn, *args):
        if self._cache_exec is None:
            return fn(*args)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._cache_exec, fn, *args)

    # -- submission ----------------------------------------------------------

    def prepare(self, obj: dict[str, Any]) -> PreparedRequest:
        """Parse and fingerprint one request object (the batch
        JSON-lines schema, plus optional per-request solver overrides).

        Pure CPU, no shared state: the server runs this off the event
        loop so a large graph's canonicalization cannot stall other
        connections.  Raises on malformed input.
        """
        item = item_from_request(obj, name="request")
        options = dict(self.defaults)
        for key in _OVERRIDE_KEYS:
            if key in obj and obj[key] is not None:
                options[key] = obj[key]
        _validate_options(options)
        if options["cost"] in (None, "auto"):
            # Resolve the sentinel BEFORE fingerprinting (select_cost is
            # pure in the instance's static features): an "auto" request
            # then shares its fingerprint — dedupe, followers, and cache
            # entries — with requests naming the resolved cost
            # explicitly, instead of hashing to a parallel universe.
            options["cost"] = select_cost(item.graph, item.system)
        order = canonical_order(item.graph)
        fp = instance_fingerprint(
            item.graph, item.system, cost=options["cost"], order=order
        )
        return PreparedRequest(item, fp, order, options)

    def admit(
        self, prepared: PreparedRequest, cached: Any = _NO_LOOKUP
    ) -> Job:
        """Admit a prepared request (cheap; event-loop thread only).

        ``cached`` carries the result of an earlier
        :meth:`cache_lookup` (an entry or ``None``); when omitted the
        lookup happens here, synchronously — the embedded/test path.
        The server always passes it, keeping cache I/O off the loop.

        Returns the accepted :class:`Job` — possibly already ``done``
        (cache hit).  Raises :class:`Draining` or :class:`QueueFull`.
        """
        if self.draining:
            raise Draining("server is draining; not accepting new jobs")
        self.counters["submitted"] += 1
        self._seq += 1
        job_id = f"j{self._seq:06d}"
        item, fp, order, options = prepared
        if item.name == "request":
            item = BatchItem(name=job_id, graph=item.graph, system=item.system)
        job = Job(job_id, item, fp, order, options)
        self._jobs[job_id] = job
        self._evict_history()
        self.tracer.event(
            "job.submit", attrs={"id": job_id, "fingerprint": fp}
        )

        # 1. The cache answers without a queue slot or a worker.
        if self.cache is not None:
            if cached is _NO_LOOKUP:
                cached = self._cache_get_blocking(prepared)
            entry = cached
            self.tracer.event(
                "cache.get",
                attrs={"id": job_id, "hit": entry is not None},
            )
            if entry is not None and len(entry.assignment) == item.graph.num_nodes:
                try:
                    self._finish(job, entry, via="cache", seconds=0.0, winner="")
                except Exception:  # noqa: BLE001 - entry unusable after all
                    # A malformed persisted entry must not leave the job
                    # active-forever (drain would hang on it) — fall
                    # through and let the solver answer instead.
                    if not job.active:
                        return job
                    job.via = None
                else:
                    self.counters["cache_hits"] += 1
                    self.counters["accepted"] += 1
                    return job

        # 2. Dedupe in front of the queue: followers ride for free —
        # but only on a primary solving with the *same* solver options;
        # a request asking for e.g. a tighter epsilon or its own
        # deadline gets its own queue slot rather than silently
        # inheriting a weaker certificate.
        primary = self._inflight.get(fp)
        if (
            primary is not None
            and primary.active
            and all(primary.options[k] == options[k] for k in _SOLVE_KEYS)
        ):
            self.counters["dedup_fanout"] += 1
            self.counters["accepted"] += 1
            job.via = "dedup"
            self._followers.setdefault(primary.id, []).append(job)
            self.tracer.event(
                "job.dedup", attrs={"id": job_id, "primary": primary.id}
            )
            return job

        # 3. Admission control on unique pending problems.
        if self._queue.qsize() >= self.queue_limit:
            self.counters["rejected"] += 1
            job.state = FAILED
            job.error = "queue full"
            job.done.set()
            self._jobs.pop(job_id, None)
            self.tracer.event("job.reject", attrs={"id": job_id})
            raise QueueFull(
                f"job queue at capacity ({self.queue_limit} pending)"
            )
        self.counters["accepted"] += 1
        self._inflight[fp] = job
        self._queue.put_nowait(job)
        return job

    def submit(self, obj: dict[str, Any]) -> Job:
        """:meth:`prepare` + :meth:`admit` in one call (tests, embedded
        use; the server splits them across threads)."""
        return self.admit(self.prepare(obj))

    def get(self, job_id: str) -> Job | None:
        """Look up a job by id (completed jobs stay until evicted)."""
        return self._jobs.get(job_id)

    # -- execution (runner coroutines on the event loop) ---------------------

    def start(self, runners: int | None = None) -> None:
        """Spawn the runner coroutines (call once, inside the loop)."""
        if self._runners:
            raise RuntimeError("JobManager already started")
        n = runners if runners is not None else self.pool.workers
        self._runners = [
            asyncio.create_task(self._runner(), name=f"job-runner-{i}")
            for i in range(max(1, n))
        ]

    async def _runner(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            job.state = RUNNING
            job.started = time.time()
            self._running += 1
            self._h_queue_wait.observe(job.started - job.submitted)
            self.tracer.event("job.start", attrs={"id": job.id})
            descriptor = _job_for(
                job.item, job.fingerprint,
                job.options["deadline"], job.options["epsilon"],
                job.options["cost"], job.options["max_expansions"],
                job.options["mode"], job.options["solver_workers"],
                job.options["max_memory_mb"],
                trace=self.tracer.enabled,
                trace_root=(
                    self.tracer.current_span_id()
                    if self.tracer.enabled else None
                ),
                probe_every=self.probe_every,
                preprocess=job.options["preprocess"],
            )
            executor = self.pool.executor
            try:
                payload = await loop.run_in_executor(
                    executor, _worker_solve, descriptor
                )
            except BrokenExecutor as exc:
                # A crashed/OOM-killed worker bricks a ProcessPool-
                # Executor permanently; replace it so one bad instance
                # cannot turn the daemon into a failure server.
                self._degrade_or_fail(
                    job, "broken_pool", f"{type(exc).__name__}: {exc}")
                if self.pool.rebuild(broken=executor):
                    self.counters["pool_rebuilds"] += 1
            except Exception as exc:  # noqa: BLE001 - worker raised
                self._degrade_or_fail(
                    job, "worker_error", f"{type(exc).__name__}: {exc}")
            else:
                try:
                    await self._complete(job, payload)
                except Exception as exc:  # noqa: BLE001 - never leave a
                    # job undone (wait=true clients and drain() block on
                    # job.done) or kill this runner coroutine.
                    self._degrade_or_fail(
                        job, "completion_error",
                        f"completion failed: {type(exc).__name__}: {exc}")
            finally:
                self._running -= 1
                self._queue.task_done()

    async def _complete(self, primary: Job, payload: dict[str, Any]) -> None:
        """Store the fresh result, then fan it out to all followers.

        The cache write (and the better-entry re-read) go through
        :meth:`_cache_call`, so a slow store blocks only this runner
        coroutine — the loop keeps serving health checks and admissions.
        """
        item = primary.item
        schedule = Schedule(
            item.graph, item.system,
            {int(n): (int(pe), float(st)) for n, pe, st in payload["assignment"]},
        )
        entry = CacheEntry(
            fingerprint=primary.fingerprint,
            assignment=canonical_assignment(schedule, primary.order),
            makespan=schedule.length,
            certificate=payload["certificate"],
            bound=payload["bound"],
            algorithm=payload["algorithm"],
            stats=payload["stats"],
        )
        self.counters["solved"] += 1
        algo = payload["algorithm"]
        self.engine_counts[algo] = self.engine_counts.get(algo, 0) + 1
        # Engine label without the parenthesised variant suffix
        # ("focal(eps=0.25,budget)" -> "focal") to keep cardinality low.
        self.registry.histogram(
            "solve_seconds",
            "Per-engine solver wall time for fresh solves.",
            labels={"engine": algo.split("(", 1)[0]},
        ).observe(payload["seconds"])
        seconds = float(payload["seconds"])
        self._solve_ewma = (
            seconds
            if self._solve_ewma is None
            else (1 - _SOLVE_EWMA_ALPHA) * self._solve_ewma
            + _SOLVE_EWMA_ALPHA * seconds
        )
        expanded = payload["stats"].get("states_expanded")
        if expanded is not None:
            self._h_expansions.observe(expanded)
        self.tracer.absorb(payload.get("trace_events"))
        stored = True
        if self.cache is not None:
            self.tracer.event(
                "cache.put", attrs={"fingerprint": entry.fingerprint}
            )
            try:
                stored = await asyncio.wait_for(
                    self._cache_call(self.cache.put, entry),
                    timeout=_CACHE_PUT_GRACE,
                )
            except asyncio.TimeoutError:
                # Wedged store: serve the fresh result now (the put may
                # still land later on the cache thread) so neither the
                # waiting client nor drain() hangs on storage.
                stored = True
            except Exception:  # noqa: BLE001 - broken store: count it,
                # serve the fresh result anyway; caching is best-effort.
                self.counters["cache_errors"] += 1
                stored = True
        if self.cache is not None and not stored:
            # The store already held something better; serve that —
            # unless it is structurally unusable for this graph (the
            # same guard the admit cache-hit path applies), in which
            # case the fresh result in hand wins.  The put just
            # answered, so the store is healthy and this get is fast.
            better = await self._cache_call(self.cache.get, primary.fingerprint)
            if (
                better is not None
                and better.better_than(entry)
                and len(better.assignment) == item.graph.num_nodes
            ):
                entry = better
        self._finish(
            primary, entry, via="solve",
            seconds=payload["seconds"], winner=payload["winner"],
        )
        if "lower_bound" in payload:
            primary.result["lower_bound"] = payload["lower_bound"]
        if payload.get("interrupted"):
            primary.result["interrupted"] = payload["interrupted"]
        # Fan out before popping: if a follower's _finish raises, the
        # runner's _fail recovery can still reach the rest of the list.
        for follower in self._followers.get(primary.id, []):
            self._finish(follower, entry, via="dedup", seconds=0.0, winner="")
        self._followers.pop(primary.id, None)
        self._release(primary)

    def _degrade_or_fail(self, primary: Job, cause: str, error: str) -> None:
        """Absorb a solve failure into a *degraded* answer when possible.

        The solver died (crashed pool worker, raised exception, broken
        completion), but the instance itself is still in hand — and the
        paper's ``U``-bound list schedule is always computable in
        milliseconds on the event-loop thread.  Serving that incumbent
        with ``certificate="degraded"`` (plus the failure ``reason``)
        keeps the daemon answering every accepted request instead of
        converting infrastructure faults into client-visible 500s.

        Degraded entries are **never cached**: the next request for the
        same fingerprint should reach a healthy (possibly rebuilt) pool
        and earn a real certificate.  Falls back to :meth:`_fail` when
        even the list schedule cannot be built.
        """
        self.failures[cause] = self.failures.get(cause, 0) + 1
        self.tracer.event(
            "job.degraded", attrs={"id": primary.id, "cause": cause}
        )
        try:
            item = primary.item
            schedule = fast_upper_bound_schedule(item.graph, item.system)
            entry = CacheEntry(
                fingerprint=primary.fingerprint,
                assignment=canonical_assignment(schedule, primary.order),
                makespan=schedule.length,
                certificate="degraded",
                bound=math.inf,
                algorithm="list(degraded)",
                stats={},
            )
            # Jobs that already finished (a completion error can strike
            # mid fan-out) keep their real result — degrade only the
            # ones still owing an answer.
            if primary.active:
                self._finish(
                    primary, entry, via="solve", seconds=0.0, winner="degraded"
                )
                primary.result["reason"] = error
                self.counters["degraded"] += 1
            for follower in self._followers.get(primary.id, []):
                if not follower.active:
                    continue
                self._finish(
                    follower, entry, via="dedup", seconds=0.0, winner="degraded"
                )
                follower.result["reason"] = error
                self.counters["degraded"] += 1
            self._followers.pop(primary.id, None)
            self._release(primary)
        except Exception:  # noqa: BLE001 - degradation itself failed
            self._fail(primary, error)

    def _fail(self, primary: Job, error: str) -> None:
        """Fail the primary and every follower riding on it (jobs that
        already finished — e.g. when a completion error struck mid
        fan-out — keep their result)."""
        for job in [primary] + self._followers.pop(primary.id, []):
            if not job.active:
                continue
            job.state = FAILED
            job.error = error
            job.finished = time.time()
            job.done.set()
            self.counters["failed"] += 1
            self._h_request.observe(job.finished - job.submitted)
            self.tracer.event(
                "job.failed", attrs={"id": job.id, "error": error}
            )
        self._release(primary)

    def _release(self, primary: Job) -> None:
        """Drop the in-flight marker iff it still points at ``primary``
        (a same-fingerprint job with different options may have taken
        the slot over)."""
        if self._inflight.get(primary.fingerprint) is primary:
            del self._inflight[primary.fingerprint]

    def _finish(
        self, job: Job, entry: CacheEntry, *,
        via: str, seconds: float, winner: str,
    ) -> None:
        """Complete one job from a (canonical-space) cache entry."""
        schedule = Schedule(
            job.item.graph, job.item.system,
            assignment_from_canonical(job.order, entry.assignment),
        )
        job.result = {
            "name": job.name,
            "fingerprint": job.fingerprint,
            "makespan": schedule.length,
            "certificate": entry.certificate,
            "algorithm": entry.algorithm,
            "winner": winner,
            "seconds": seconds,
            "assignment": [[t.node, t.pe, t.start] for t in schedule.tasks],
        }
        job.via = via
        job.state = DONE
        job.finished = time.time()
        job.done.set()
        self.counters["completed"] += 1
        self._h_request.observe(job.finished - job.submitted)
        self.tracer.event("job.done", attrs={"id": job.id, "via": via})

    def _evict_history(self) -> None:
        """Drop the oldest *finished* jobs beyond the history bound."""
        if len(self._jobs) <= self.history_limit:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.history_limit:
                break
            if not self._jobs[job_id].active:
                del self._jobs[job_id]

    # -- drain ---------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting, finish every accepted job, stop the runners.

        Idempotent; after it returns no job is left ``queued`` or
        ``running`` and the runner tasks are cancelled.
        """
        self.draining = True
        pending = [job for job in self._jobs.values() if job.active]
        for job in pending:
            await job.done.wait()
        for task in self._runners:
            task.cancel()
        for task in self._runners:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._runners = []

    # -- deep readiness ------------------------------------------------------

    async def deep_checks(self) -> dict[str, str]:
        """The checks behind ``/healthz?deep=1``: can this daemon
        actually *solve*, not merely answer HTTP?

        * ``pool`` — :meth:`SolverPool.liveness`: non-blocking, so a
          busy-but-healthy pool stays green (submitting a ping would
          queue behind real searches and time out).
        * ``cache`` — :meth:`ResultCache.probe` on the cache thread:
          round-trips a scratch write, bounded by
          :data:`_DEEP_PROBE_TIMEOUT` so a wedged store reads as
          unhealthy instead of wedging the probe.

        Returns ``{check: "ok" | reason}``; the server answers 503
        when any check fails, which is what tells the fleet router to
        stop routing here (see :mod:`repro.service.router`).
        """
        checks: dict[str, str] = {}
        pool_problem = self.pool.liveness()
        checks["pool"] = pool_problem or "ok"
        if self.cache is None:
            checks["cache"] = "ok"
        else:
            try:
                await asyncio.wait_for(
                    self._cache_call(self.cache.probe),
                    timeout=_DEEP_PROBE_TIMEOUT,
                )
            except asyncio.TimeoutError:
                checks["cache"] = (
                    f"probe not answered in {_DEEP_PROBE_TIMEOUT}s "
                    "(cache thread wedged)"
                )
            except Exception as exc:  # noqa: BLE001 - any store failure
                # (CacheBackendError, injected faults, ...) must read
                # as an unhealthy check, never break the probe route.
                checks["cache"] = f"{type(exc).__name__}: {exc}"
            else:
                checks["cache"] = "ok"
        return checks

    # -- introspection -------------------------------------------------------

    def followers_waiting(self) -> int:
        """Requests currently riding an in-flight primary as dedupe
        followers.  Reported separately from :attr:`queue_depth` —
        which counts *unique* pending problems only — so a burst of
        identical requests is visible as fan-out, not hidden queue
        pressure (or, worse, mistaken for an idle queue)."""
        return sum(len(v) for v in self._followers.values())

    def retry_after_hint(self) -> int:
        """Adaptive ``Retry-After`` seconds for 429/503 responses.

        Estimates when a queue slot will open: unique work ahead of
        the client (queued + running) times the recent fresh-solve
        wall time (EWMA; 1s before any solve has landed), divided by
        the runner count, clamped to
        [:data:`_RETRY_AFTER_MIN`, :data:`_RETRY_AFTER_MAX`].  A full
        queue of second-long solves tells clients to come back tens of
        seconds later instead of the historical fixed ``1``, which had
        the whole rejected burst re-arrive while the queue was still
        full.
        """
        pending = self._queue.qsize() + self._running
        runners = max(1, len(self._runners) or self.pool.workers)
        per_solve = self._solve_ewma if self._solve_ewma else 1.0
        eta = math.ceil(pending * per_solve / runners)
        return int(min(_RETRY_AFTER_MAX, max(_RETRY_AFTER_MIN, eta)))

    def metrics(self) -> dict[str, Any]:
        """The ``GET /metrics`` payload."""
        submitted = self.counters["submitted"]
        hit_rate = (
            self.counters["cache_hits"] / submitted if submitted else 0.0
        )
        if self.shard_id is not None:
            return {"shard": self.shard_id, **self._metrics_body(hit_rate)}
        return self._metrics_body(hit_rate)

    def _metrics_body(self, hit_rate: float) -> dict[str, Any]:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "queue_depth": self._queue.qsize(),
            "dedup_followers": self.followers_waiting(),
            "queue_limit": self.queue_limit,
            "running": self._running,
            "in_flight": len(self._inflight),
            "pool_workers": self.pool.workers,
            "jobs": dict(self.counters),
            "failures": dict(self.failures),
            "cache_hit_rate": hit_rate,
            "engines": dict(self.engine_counts),
            "cache": self.cache.counters() if self.cache is not None else {},
            # Histogram-derived p50/p99 (request latency, queue wait,
            # per-engine solve seconds, expansions per solve).  Additive
            # to the legacy schema above — the pinned schema test keeps
            # every pre-existing key byte-compatible.
            "latency": self.registry.histogram_summaries(),
        }

    def prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: text exposition 0.0.4.

        The histogram series come straight from :attr:`registry`; the
        legacy JSON counters and gauges are re-emitted as synthesized
        families so one scrape covers the whole daemon.
        """
        m = self.metrics()
        ns = self.registry.namespace
        lines: list[str] = []

        def gauge(name: str, value: float, help_text: str) -> None:
            lines.append(f"# HELP {ns}_{name} {help_text}")
            lines.append(f"# TYPE {ns}_{name} gauge")
            lines.append(f"{ns}_{name} {_format_value(float(value))}")

        def family(
            name: str, mapping: dict, label: str, help_text: str,
        ) -> None:
            if not mapping:
                return
            lines.append(f"# HELP {ns}_{name} {help_text}")
            lines.append(f"# TYPE {ns}_{name} counter")
            for key, val in sorted(mapping.items()):
                esc = _escape_label_value(str(key))
                lines.append(
                    f'{ns}_{name}{{{label}="{esc}"}} '
                    f"{_format_value(float(val))}"
                )

        gauge("uptime_seconds", m["uptime_seconds"],
              "Seconds since the daemon started.")
        gauge("draining", float(m["draining"]),
              "1 while drain is in progress, else 0.")
        gauge("queue_depth", m["queue_depth"],
              "Unique jobs queued, not yet running.")
        gauge("dedup_followers", m["dedup_followers"],
              "Requests riding an in-flight primary as dedupe "
              "followers (not counted in queue_depth).")
        gauge("queue_limit", m["queue_limit"],
              "Admission-control capacity (unique pending jobs).")
        gauge("jobs_running", m["running"],
              "Jobs currently executing on the pool.")
        gauge("jobs_in_flight", m["in_flight"],
              "Unique fingerprints queued or running (dedupe targets).")
        gauge("pool_workers", m["pool_workers"],
              "Solver pool worker processes.")
        gauge("cache_hit_rate", m["cache_hit_rate"],
              "Cache hits / submissions since start.")
        family("jobs_total", m["jobs"], "event",
               "Job lifecycle counters by event.")
        family("solve_failures_total", m["failures"], "cause",
               "Solve failures absorbed by the degrade path, by cause.")
        family("engine_solves_total", m["engines"], "algorithm",
               "Fresh solves by winning algorithm.")
        family("cache_events_total", m["cache"], "event",
               "Result-cache operation counters.")
        return self.registry.render_prometheus(extra="\n".join(lines))
