"""Persistent result cache keyed by instance fingerprint.

The paper's introduction motivates optimal schedules partly by reuse
("once an optimal schedule for a given problem is determined, it can be
re-used"); this cache is that reuse made operational.  Results live in
an in-memory LRU (bounded, O(1) touch) in front of an optional durable
tier, so a warm service answers repeated instances without searching
and survives restarts.

The durable tier is pluggable (:mod:`repro.service.shardcache`):
SQLite by default, including a multi-process *shared* mode the sharded
fleet uses so a failover replay on another shard hits a warm result.
:class:`CacheEntry` is defined in ``shardcache`` (backends serialize
it) and re-exported here for compatibility.

Entries store the *canonical* assignment (per canonical node position,
see :mod:`repro.schedule.fingerprint`), the makespan, the optimality
certificate, and the search counters.  Storing in canonical space is
what makes the cache relabeling-proof: a hit computed for one node
numbering replays onto any permutation of the same instance.

Write policy: a new entry replaces an existing one only when it is
*better* — a proven certificate beats an unproven one, then shorter
makespan wins.  Read policy: ``get(..., require_proven=True)`` treats
unproven entries as **stale** (counted, not returned), so callers that
need certificates transparently fall through to the solver which then
overwrites the stale entry.
"""

from __future__ import annotations

import sqlite3
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.service.shardcache import (
    CacheBackend,
    CacheBackendError,
    CacheEntry,
    SQLiteBackend,
    backend_from_spec,
)
from repro.testing import faults

__all__ = ["CacheEntry", "ResultCache", "CacheBackend", "CacheBackendError"]


class ResultCache:
    """LRU-fronted, optionally persistent fingerprint -> result cache.

    Parameters
    ----------
    path:
        The durable tier: a SQLite file path, a ``"shared:PATH"`` spec
        (multi-process shared store, see
        :class:`~repro.service.shardcache.SQLiteBackend`), a ready
        :class:`~repro.service.shardcache.CacheBackend`, or ``None`` /
        ``"memory"`` for a purely in-memory cache (still LRU-bounded).
        The cache owns whatever backend it ends up with —
        :meth:`close` closes it; give each cache its own backend
        instance (cross-*process* sharing goes through the shared
        SQLite file, not a shared Python object).
    capacity:
        Maximum entries held in memory.  The durable store is
        unbounded — evicted entries remain there and reload on demand.

    Counters: :attr:`hits` (entry served), :attr:`misses` (nothing
    stored), :attr:`stale` (entry present but rejected by
    ``require_proven``, or a store-level backend failure absorbed).
    """

    def __init__(
        self,
        path: str | Path | CacheBackend | None = None,
        *,
        capacity: int = 512,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._mem: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self._backend = backend_from_spec(path)
        self.path = getattr(self._backend, "path", None)

    @property
    def backend(self) -> CacheBackend | None:
        """The durable tier (``None`` for memory-only caches)."""
        return self._backend

    @property
    def _db(self) -> sqlite3.Connection | None:
        """Backward-compatible view of the SQLite handle.

        Pre-refactor code (and its tests) used ``cache._db is None`` as
        the closed/memory-only signal; keep that observable.
        """
        if isinstance(self._backend, SQLiteBackend):
            return self._backend.connection
        return None

    def _store_open(self) -> bool:
        """True while the durable tier can be used."""
        return self._backend is not None and not self._backend.closed

    # -- core protocol -------------------------------------------------------

    def get(
        self, fingerprint: str, *, require_proven: bool = False
    ) -> CacheEntry | None:
        """Look up a fingerprint; updates LRU order and counters."""
        faults.sleep_point("cache-slow")
        faults.raise_point("cache-get-error")
        entry = self._mem.get(fingerprint)
        if entry is None and self._store_open():
            entry = self._load(fingerprint)
            if entry is not None:
                self._admit(entry)
        if entry is None:
            self.misses += 1
            return None
        if require_proven and not entry.proven:
            self.stale += 1
            return None
        self._mem.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> bool:
        """Store an entry; returns False when an existing one is better."""
        faults.sleep_point("cache-slow")
        faults.raise_point("cache-put-error")
        if entry.created == 0.0:
            entry = replace(entry, created=time.time())
        current = self._mem.get(entry.fingerprint)
        if current is None and self._store_open():
            current = self._load(entry.fingerprint)
        if current is not None and not entry.better_than(current):
            return False
        self._admit(entry)
        if self._store_open():
            try:
                self._backend.store(entry)  # type: ignore[union-attr]
            except CacheBackendError:
                # A corrupt store must not abort the batch: the entry
                # stays served from the memory tier, the broken write is
                # counted like a stale read.  Caller bugs (e.g. a
                # non-serializable entry) are NOT backend errors and
                # propagate unchanged.
                self.stale += 1
        return True

    def _load(self, fingerprint: str) -> CacheEntry | None:
        """Read one persisted entry; corruption reads as a miss.

        A store written by a different code version (schema mismatch)
        or a payload mangled by a crash reads as ``None`` inside the
        backend; a store whose *file* is broken raises
        :class:`CacheBackendError`, absorbed here — either way the
        caller falls through to the solver, whose fresh result then
        overwrites the bad row.  Store-level failures are counted in
        :attr:`stale`: an entry was (nominally) present but unusable.
        """
        try:
            return self._backend.load(fingerprint)  # type: ignore[union-attr]
        except CacheBackendError:
            self.stale += 1
            return None

    def _admit(self, entry: CacheEntry) -> None:
        """Insert into the LRU tier, evicting least-recently-used."""
        self._mem[entry.fingerprint] = entry
        self._mem.move_to_end(entry.fingerprint)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    # -- introspection -------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Hit/miss/stale counters plus sizes, for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "memory_entries": len(self._mem),
            "stored_entries": self.stored_entries,
        }

    @property
    def stored_entries(self) -> int:
        """Entries in the durable tier (= memory tier when none)."""
        if not self._store_open():
            return len(self._mem)
        return self._backend.count()  # type: ignore[union-attr]

    def probe(self) -> None:
        """Deep-readiness check: prove a future ``put`` would land.

        Runs on the daemon's cache thread for ``/healthz?deep=1``:
        verifies the durable tier is *writable* (not just present) by
        round-tripping a scratch write.  Raises
        :class:`CacheBackendError` on failure; a memory-only or
        already-closed cache trivially passes (puts degrade to the
        memory tier by design).
        """
        faults.sleep_point("cache-slow")
        faults.raise_point("cache-probe-error")
        if self._store_open():
            self._backend.probe()  # type: ignore[union-attr]

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._mem:
            return True
        if not self._store_open():
            return False
        return self._backend.contains(fingerprint)  # type: ignore[union-attr]

    def close(self) -> None:
        """Close the durable tier (no-op for in-memory caches)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        tier = self._backend.describe() if self._backend else "memory"
        return (
            f"ResultCache({len(self._mem)}/{self.capacity} in memory, "
            f"store={tier}, hits={self.hits}, misses={self.misses})"
        )
