"""Persistent result cache keyed by instance fingerprint.

The paper's introduction motivates optimal schedules partly by reuse
("once an optimal schedule for a given problem is determined, it can be
re-used"); this cache is that reuse made operational.  Results live in
an in-memory LRU (bounded, O(1) touch) in front of an optional SQLite
store, so a warm service answers repeated instances without searching
and survives restarts.

Entries store the *canonical* assignment (per canonical node position,
see :mod:`repro.schedule.fingerprint`), the makespan, the optimality
certificate, and the search counters.  Storing in canonical space is
what makes the cache relabeling-proof: a hit computed for one node
numbering replays onto any permutation of the same instance.

Write policy: a new entry replaces an existing one only when it is
*better* — a proven certificate beats an unproven one, then shorter
makespan wins.  Read policy: ``get(..., require_proven=True)`` treats
unproven entries as **stale** (counted, not returned), so callers that
need certificates transparently fall through to the solver which then
overwrites the stale entry.
"""

from __future__ import annotations

import json
import sqlite3
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.testing import faults

__all__ = ["CacheEntry", "ResultCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached solve, in canonical node space."""

    fingerprint: str
    assignment: tuple[tuple[int, float], ...]  # (pe, start) per canonical pos
    makespan: float
    certificate: str  # "proven" | "epsilon" | "budget" | "degraded"
    bound: float
    algorithm: str
    stats: dict[str, float] = field(default_factory=dict)
    created: float = 0.0

    @property
    def proven(self) -> bool:
        """True when the cached schedule carries an optimality proof."""
        return self.certificate == "proven"

    def better_than(self, other: "CacheEntry") -> bool:
        """Replacement order: proof first, then makespan."""
        if self.proven != other.proven:
            return self.proven
        return self.makespan < other.makespan

    #: Payload schema version; bump on any CacheEntry field change so
    #: stores written by other code versions read as misses, not crashes.
    SCHEMA = 1

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe payload (used by the SQLite store and reports)."""
        return {
            "schema": self.SCHEMA,
            "fingerprint": self.fingerprint,
            "assignment": [[pe, start] for pe, start in self.assignment],
            "makespan": self.makespan,
            "certificate": self.certificate,
            "bound": self.bound,
            "algorithm": self.algorithm,
            "stats": self.stats,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CacheEntry":
        if data.get("schema") != cls.SCHEMA:
            raise ValueError(f"unsupported cache payload schema {data.get('schema')!r}")
        return cls(
            fingerprint=data["fingerprint"],
            assignment=tuple(
                (int(pe), float(start)) for pe, start in data["assignment"]
            ),
            makespan=float(data["makespan"]),
            certificate=data["certificate"],
            bound=float(data["bound"]),
            algorithm=data["algorithm"],
            stats=dict(data.get("stats", {})),
            created=float(data.get("created", 0.0)),
        )


class ResultCache:
    """LRU-fronted, optionally persistent fingerprint -> result cache.

    Parameters
    ----------
    path:
        SQLite file for persistence; ``None`` keeps the cache purely
        in-memory (still LRU-bounded).
    capacity:
        Maximum entries held in memory.  The SQLite store is unbounded —
        evicted entries remain on disk and reload on demand.

    Counters: :attr:`hits` (entry served), :attr:`misses` (nothing
    stored), :attr:`stale` (entry present but rejected by
    ``require_proven``).
    """

    def __init__(
        self, path: str | Path | None = None, *, capacity: int = 512
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._mem: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.path = Path(path) if path is not None else None
        self._db: sqlite3.Connection | None = None
        if self.path is not None:
            # check_same_thread=False: the daemon constructs the cache
            # on its event-loop thread but routes all get/put I/O
            # through a dedicated single-worker cache executor (see
            # repro.service.jobs), so the connection crosses threads.
            # CPython's sqlite3 is built in serialized mode
            # (threadsafety == 3), making the shared handle safe; the
            # single-worker executor keeps writes strictly ordered.
            self._db = sqlite3.connect(str(self.path), check_same_thread=False)
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " fingerprint TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL,"
                " makespan REAL NOT NULL,"
                " proven INTEGER NOT NULL,"
                " created REAL NOT NULL)"
            )
            self._db.commit()

    # -- core protocol -------------------------------------------------------

    def get(
        self, fingerprint: str, *, require_proven: bool = False
    ) -> CacheEntry | None:
        """Look up a fingerprint; updates LRU order and counters."""
        faults.sleep_point("cache-slow")
        faults.raise_point("cache-get-error")
        entry = self._mem.get(fingerprint)
        if entry is None and self._db is not None:
            entry = self._load_row(fingerprint)
            if entry is not None:
                self._admit(entry)
        if entry is None:
            self.misses += 1
            return None
        if require_proven and not entry.proven:
            self.stale += 1
            return None
        self._mem.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> bool:
        """Store an entry; returns False when an existing one is better."""
        faults.sleep_point("cache-slow")
        faults.raise_point("cache-put-error")
        if entry.created == 0.0:
            entry = replace(entry, created=time.time())
        current = self._mem.get(entry.fingerprint)
        if current is None and self._db is not None:
            current = self._load_row(entry.fingerprint)
        if current is not None and not entry.better_than(current):
            return False
        self._admit(entry)
        if self._db is not None:
            try:
                self._db.execute(
                    "INSERT OR REPLACE INTO results"
                    " (fingerprint, payload, makespan, proven, created)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (
                        entry.fingerprint,
                        json.dumps(entry.as_dict()),
                        entry.makespan,
                        int(entry.proven),
                        entry.created,
                    ),
                )
                self._db.commit()
            except sqlite3.DatabaseError:
                # A corrupt store must not abort the batch: the entry
                # stays served from the memory tier, the broken row is
                # counted like a stale read.
                self.stale += 1
        return True

    def _load_row(self, fingerprint: str) -> CacheEntry | None:
        """Read one persisted entry; corruption reads as a miss.

        A store written by a different code version (schema mismatch),
        a payload mangled by a crash, or a store whose *file* is
        corrupt (``sqlite3.DatabaseError`` — raised by the query
        itself, not the JSON decode) must never poison a batch run —
        the caller falls through to the solver, whose fresh result then
        overwrites the bad row.  File-level corruption is counted in
        :attr:`stale`: an entry was (nominally) present but unusable.
        """
        try:
            row = self._db.execute(  # type: ignore[union-attr]
                "SELECT payload FROM results WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        except sqlite3.DatabaseError:
            self.stale += 1
            return None
        if row is None:
            return None
        try:
            return CacheEntry.from_dict(json.loads(row[0]))
        except (ValueError, KeyError, TypeError):
            # Covers json.JSONDecodeError (a ValueError), schema
            # mismatches, and structurally-wrong payloads.
            return None

    def _admit(self, entry: CacheEntry) -> None:
        """Insert into the LRU tier, evicting least-recently-used."""
        self._mem[entry.fingerprint] = entry
        self._mem.move_to_end(entry.fingerprint)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    # -- introspection -------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Hit/miss/stale counters plus sizes, for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "memory_entries": len(self._mem),
            "stored_entries": self.stored_entries,
        }

    @property
    def stored_entries(self) -> int:
        """Entries in the persistent tier (= memory tier when no path)."""
        if self._db is None:
            return len(self._mem)
        return int(self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._mem:
            return True
        if self._db is None:
            return False
        return (
            self._db.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            is not None
        )

    def close(self) -> None:
        """Close the SQLite handle (no-op for in-memory caches)."""
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        tier = str(self.path) if self.path else "memory"
        return (
            f"ResultCache({len(self._mem)}/{self.capacity} in memory, "
            f"store={tier}, hits={self.hits}, misses={self.misses})"
        )
