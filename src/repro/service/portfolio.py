"""Deadline-driven portfolio solving and static engine selection.

The paper's central observation is that no single search technique wins
everywhere: exact A* is unbeatable when OPEN fits in memory, depth-first
B&B trades expansions for O(depth) memory on communication-heavy
instances, and the ε-approximate variants buy orders of magnitude on
graphs too large to prove optimal.  This module packages that
observation two ways:

* :func:`select_engine` — the static heuristic: pick one engine from the
  instance's size, CCR, and edge density (the features the paper's §4
  discussion identifies as deciding the winner), for the single-engine
  fast path;
* :func:`portfolio_schedule` — the anytime ladder: race a linear-time
  list-schedule incumbent, then weighted A* as a fast improver, then an
  exact engine *seeded with the incumbent bound*, sharing the best
  makespan across stages and stopping at the deadline.  The result can
  never be worse than the list-schedule baseline (the incumbent only
  improves), and carries a provenance record of which stage won.

Stage budgeting: the improver stage gets ``_IMPROVER_SHARE`` of the
remaining deadline, the exact stage the rest.  With no deadline the
ladder still terminates: every stage is bounded by ``max_expansions``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.graph.analysis import graph_ccr
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.obs.trace import Tracer, null_tracer
from repro.schedule.partial import PartialSchedule
from repro.schedule.preprocess import PreprocessResult, preprocess_instance
from repro.schedule.schedule import Schedule
from repro.search import get_engine
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.search.weighted import weighted_astar_schedule
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

__all__ = [
    "StageReport",
    "PortfolioResult",
    "select_engine",
    "select_cost",
    "solve_auto",
    "portfolio_schedule",
]

#: Fraction of the remaining deadline granted to the weighted-A* improver.
_IMPROVER_SHARE = 0.25
#: Below this size exact A* is effectively instant; skip the improver.
_SMALL_V = 14
#: CCR at or above which B&B's O(depth) memory beats A*'s OPEN list.
_HIGH_CCR = 5.0
#: Edge density above which the state space is narrow enough for A*.
_DENSE = 0.35
#: Above this node count the exact stage goes to the multiprocess HDA*
#: engine when the caller granted ``workers > 1`` — below it the serial
#: engine finishes before worker processes would even spawn.
_HDA_MIN_V = 14
#: Expansion cap for the chain-contraction warm-start probe: the
#: contracted instance is strictly smaller, so a short exact burst on it
#: usually yields a tight incumbent for pennies.
_CONTRACT_PROBE_EXPANSIONS = 4_000


@dataclass(frozen=True)
class StageReport:
    """Provenance of one portfolio stage."""

    stage: str  # "list" | "improve" | "exact"
    algorithm: str
    makespan: float
    improved: bool  # did this stage tighten the incumbent?
    optimal: bool
    seconds: float
    expanded: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "algorithm": self.algorithm,
            "makespan": self.makespan,
            "improved": self.improved,
            "optimal": self.optimal,
            "seconds": self.seconds,
            "expanded": self.expanded,
        }


@dataclass(frozen=True)
class PortfolioResult:
    """Best schedule across the stage ladder plus its provenance."""

    schedule: Schedule
    optimal: bool
    bound: float
    stats: SearchStats
    algorithm: str  # algorithm label of the winning stage
    winner: str  # stage name of the winning stage
    stages: tuple[StageReport, ...]
    #: Tightest proven floor on the optimal makespan across stages
    #: (equals the makespan when ``optimal``); turns a budget-stopped
    #: ladder into a certified-approximate answer.
    lower_bound: float = 0.0
    #: Why the last exact attempt stopped early (``None`` when it
    #: finished on its own) — budget reason or worker-failure cause.
    interrupted: str | None = None
    #: Convergence samples across the whole ladder (expansion axis
    #: accumulates over stages); ``()`` unless a probe was requested.
    timeline: tuple = ()

    @property
    def length(self) -> float:
        """Makespan of the returned schedule."""
        return self.schedule.length

    @property
    def certificate(self) -> str:
        """Optimality certificate: ``proven``, ``epsilon`` or ``budget``
        (delegates to :attr:`SearchResult.certificate` — one definition)."""
        return self.as_search_result().certificate

    def as_search_result(self) -> SearchResult:
        """Flatten into the engines' common result type."""
        return SearchResult(
            schedule=self.schedule,
            optimal=self.optimal,
            bound=self.bound,
            stats=self.stats,
            algorithm=f"portfolio({self.algorithm})",
            lower_bound=self.lower_bound,
            interrupted=self.interrupted,
            timeline=self.timeline,
        )


def select_engine(graph: TaskGraph, system: ProcessorSystem) -> str:
    """Pick one engine from static instance features.

    The rules condense the paper's §4 observations: small instances are
    A* territory outright; high CCR inflates communication terms until
    A*'s OPEN list (not its expansion count) is the binding resource, so
    depth-first B&B wins; large sparse graphs have state spaces nobody
    proves optimal interactively, so weighted A* buys the near-optimal
    answer.  Dense precedence constraints shrink the ready set and keep
    A* viable beyond the small-v cutoff.
    """
    v = graph.num_nodes
    if v <= _SMALL_V:
        return "astar"
    if graph_ccr(graph) >= _HIGH_CCR:
        return "bnb"
    density = graph.num_edges / max(1, v * (v - 1) // 2)
    if density >= _DENSE:
        return "astar"
    return "wastar"


def select_cost(graph: TaskGraph, system: ProcessorSystem) -> str:
    """Pick the guiding cost function from static instance features.

    The composite bound (``max(paper, load)``,
    :class:`~repro.search.costs.CombinedCost`) dominates the paper bound
    state-for-state and is the default wherever processors are scarce
    enough for machine capacity to bind — the regime every measured
    expansion reduction comes from (see ``benchmarks/bench_bounds.py``).
    With a PE per task (the §4.1 setup) the capacity term degenerates to
    the mean weight and never beats the critical-path term, so the O(P
    log P) it would add to every evaluation is pure overhead — the
    paper's own cheap bound wins there, which is precisely its Table-1
    argument.

    Engines accept the sentinel ``"auto"`` (or ``None``) for ``cost``
    nowhere; resolution happens here, at the portfolio boundary.
    """
    if system.num_pes >= graph.num_nodes:
        return "paper"
    return "combined"


def _resolve_cost(cost: str | None, graph: TaskGraph,
                  system: ProcessorSystem) -> str:
    """Map the ``None``/``"auto"`` sentinel to a concrete registry name."""
    if cost is None or cost == "auto":
        return select_cost(graph, system)
    return cost


def _run_engine(
    name: str,
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    budget: Budget,
    epsilon: float,
    cost: str,
    state_cls: type,
    incumbent: Schedule | None,
    workers: int = 1,
    probe: SearchProbe | None = None,
    tracer: Tracer | None = None,
    pruning: PruningConfig | None = None,
) -> SearchResult:
    """Dispatch one engine through the registry (the portfolio's
    inner call); per-engine extras are bound here."""
    engine = get_engine(name)  # raises ValueError on unknown names
    if name in ("astar", "bnb"):
        return engine(
            graph, system, cost=cost, budget=budget, pruning=pruning,
            state_cls=state_cls, incumbent=incumbent, probe=probe,
        )
    if name == "wastar":
        return engine(
            graph, system, epsilon, cost=cost, budget=budget,
            pruning=pruning, state_cls=state_cls, probe=probe,
        )
    if name == "hda":
        return engine(
            graph, system, workers=workers, cost=cost, budget=budget,
            pruning=pruning, state_cls=state_cls, incumbent=incumbent,
            probe=probe, tracer=tracer,
        )
    raise ValueError(f"engine {name!r} is not portfolio-dispatchable")


def solve_auto(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    deadline: float | None = None,
    epsilon: float = 0.25,
    cost: str | None = None,
    max_expansions: int | None = 500_000,
    state_cls: type = PartialSchedule,
    workers: int = 1,
    max_memory_mb: float | None = None,
    tracer: Tracer | None = None,
    probe_every: int | None = None,
    preprocess: bool = False,
) -> SearchResult:
    """Single-engine fast path: :func:`select_engine` then one search.

    ``cost=None`` (or ``"auto"``) resolves via :func:`select_cost` —
    the composite ``combined`` bound wherever capacity can bind.
    ``workers > 1`` upgrades an exact selection to the multiprocess
    HDA* engine on instances large enough to amortize process spawn.
    ``max_memory_mb`` arms the RSS ceiling: the engine stops there and
    returns its incumbent plus lower bound instead of growing unbounded.
    ``tracer``/``probe_every`` enable the :mod:`repro.obs` telemetry:
    a span around the engine run and a convergence timeline on the
    result.  ``preprocess=True`` runs the makespan-preserving
    reductions of :mod:`repro.schedule.preprocess` first, searches the
    reduced instance (with symmetry normalization when eligible), and
    restores the answer to the caller's node space — makespan,
    optimality and lower bound carry over unchanged because every
    applied reduction is equivalence-proven.
    """
    pre: PreprocessResult | None = None
    pruning: PruningConfig | None = None
    if preprocess:
        pre = preprocess_instance(graph, system)
        graph = pre.graph
        if pre.root_symmetry:
            pruning = PruningConfig(root_symmetry=True)
    cost = _resolve_cost(cost, graph, system)
    engine = select_engine(graph, system)
    # Only an A* selection upgrades: a "bnb" selection is the
    # high-CCR *memory* decision, and HDA* holds full OPEN/CLOSED
    # lists in every worker — exactly what that decision avoids.
    if workers > 1 and engine == "astar" and graph.num_nodes > _HDA_MIN_V:
        engine = "hda"
    budget = Budget(max_expanded=max_expansions, max_seconds=deadline,
                    max_memory_mb=max_memory_mb)
    tr = tracer if tracer is not None else null_tracer
    probe = SearchProbe(probe_every) if probe_every else None
    with tr.span("portfolio.auto", attrs={"engine": engine, "cost": cost}):
        res = _run_engine(
            engine, graph, system, budget=budget, epsilon=epsilon,
            cost=cost, state_cls=state_cls, incumbent=None, workers=workers,
            probe=probe, tracer=tracer, pruning=pruning,
        )
        _emit_timeline(tr, res.timeline, label=engine)
    if pre is not None:
        if res.schedule is not None:
            res.schedule = pre.restore(res.schedule)
        res.stats.pruning.merge(pre.stats)
    return res


def portfolio_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    deadline: float | None = None,
    epsilon: float = 0.25,
    cost: str | None = None,
    max_expansions: int | None = 500_000,
    state_cls: type = PartialSchedule,
    workers: int = 1,
    max_memory_mb: float | None = None,
    tracer: Tracer | None = None,
    probe_every: int | None = None,
    preprocess: bool = False,
) -> PortfolioResult:
    """Race the stage ladder against a wall-clock deadline.

    Parameters
    ----------
    graph, system:
        The problem instance.
    deadline:
        Total wall-clock seconds for all stages; ``None`` bounds each
        stage by ``max_expansions`` only.  Every stage's engine receives
        the *remaining* budget (``deadline - elapsed``), never the
        original allotment, so an overrunning early stage eats its own
        slack instead of the caller's deadline.
    epsilon:
        Sub-optimality factor for the weighted-A* improver stage.
    cost:
        Guiding cost function for the improver and exact stages;
        ``None``/``"auto"`` (the default) resolves via
        :func:`select_cost`, making the composite ``combined`` bound the
        exact-stage default wherever machine capacity can bind.
    max_expansions:
        Per-ladder expansion cap (the improver gets a quarter of it).
    state_cls:
        Search-state implementation, forwarded to every engine.
    workers:
        Worker processes for the exact stage; ``> 1`` hands instances
        with ``v > _HDA_MIN_V`` to the multiprocess HDA* engine (the
        stage keeps its deadline share and incumbent seeding) — except
        when the selector chose B&B for its O(depth) memory on
        high-CCR instances, which stays serial.  ``max_expansions``
        remains the memory backstop for the upgraded stage.
    max_memory_mb:
        Process-RSS ceiling forwarded to every stage's budget; a stage
        that hits it degrades to its incumbent + lower bound instead of
        growing without bound (HDA* divides its tracked-state share
        across workers and samples RSS per worker process).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`: every stage runs
        under a ``portfolio.<stage>`` span and the convergence timeline
        is emitted as a ``search.timeline`` event.
    probe_every:
        Sampling interval (expansions) for the convergence probe; one
        probe spans the whole ladder (the expansion axis accumulates
        across stages) and the series lands on ``result.timeline``.
        ``None`` (the default) disables sampling entirely.
    preprocess:
        Run the :mod:`repro.schedule.preprocess` reductions first and
        race the ladder on the reduced instance.  Adds a ``contract``
        warm-start stage when the instance has contractible chains
        (the contracted instance's answer unfolds into an incumbent —
        an upper bound only, never a proof), switches on symmetry
        normalization when the system is eligible, and restores the
        final schedule to the caller's node space.  Every applied
        reduction is makespan-preserving, so ``optimal``/``bound``/
        ``lower_bound`` carry over unchanged; results cached by the
        service layer stay valid across ``preprocess`` on/off.

    Fault tolerance: when the HDA* exact stage loses a worker (crash or
    stall) the ladder retries it **once** with the remaining deadline,
    then falls back to the serial engine — so a transient process death
    degrades the certificate at worst, never the answer.

    Guarantees: the returned makespan is never worse than the linear-time
    list schedule; ``optimal`` is True iff the exact stage ran to
    completion; ``bound`` is the tightest proven sub-optimality factor
    across stages (a completed improver proves ``1 + epsilon`` even when
    the exact stage times out).
    """
    t0 = time.perf_counter()
    pre: PreprocessResult | None = None
    pruning: PruningConfig | None = None
    if preprocess:
        pre = preprocess_instance(graph, system)
        graph = pre.graph
        if pre.root_symmetry:
            pruning = PruningConfig(root_symmetry=True)
    cost = _resolve_cost(cost, graph, system)
    tr = tracer if tracer is not None else null_tracer
    probe = SearchProbe(probe_every) if probe_every else None

    def remaining() -> float | None:
        if deadline is None:
            return None
        return deadline - (time.perf_counter() - t0)

    total = SearchStats()
    stages: list[StageReport] = []

    # -- stage 1: linear-time incumbent (the §3.2 U-bound heuristic) -------
    s0 = time.perf_counter()
    with tr.span("portfolio.list"):
        best = fast_upper_bound_schedule(graph, system)
    stages.append(
        StageReport(
            stage="list", algorithm="list(b-level)", makespan=best.length,
            improved=True, optimal=False,
            seconds=time.perf_counter() - s0,
        )
    )
    winner = "list"
    winner_algo = "list(b-level)"
    optimal = False
    bound = math.inf
    lower = 0.0  # tightest proven floor across stages
    interrupted: str | None = None
    if pre is not None:
        total.pruning.merge(pre.stats)

    # -- stage 1b: chain-contraction warm-start probe ----------------------
    # A short exact burst on the chain-contracted companion instance;
    # its answer unfolds into a feasible schedule of the reduced
    # instance with the same length.  Strictly an incumbent: optimality
    # on the contracted instance proves nothing here (contraction can
    # exclude every optimal schedule — see the pinned counterexamples),
    # so ``optimal``/``bound``/``lower`` are deliberately untouched.
    if pre is not None and pre.chain_plan is not None:
        plan = pre.chain_plan
        left = remaining()
        if left is None or left > 0:
            sp = time.perf_counter()
            probe_budget = Budget(
                max_expanded=(
                    _CONTRACT_PROBE_EXPANSIONS if max_expansions is None
                    else min(_CONTRACT_PROBE_EXPANSIONS, max_expansions // 8)
                ),
                max_seconds=None if left is None else left * _IMPROVER_SHARE,
            )
            with tr.span("portfolio.contract",
                         attrs={"v": plan.graph.num_nodes, "cost": cost}):
                res = _run_engine(
                    "astar", plan.graph, system, budget=probe_budget,
                    epsilon=epsilon, cost=cost, state_cls=state_cls,
                    incumbent=None, pruning=pruning,
                )
            improved = False
            if res.schedule is not None:
                cand = plan.unfold(res.schedule, graph)
                improved = cand.length < best.length
                if improved:
                    best = cand
                    winner = "contract"
                    winner_algo = f"contract({res.algorithm})"
            total.merge(res.stats)
            stages.append(
                StageReport(
                    stage="contract", algorithm=res.algorithm,
                    makespan=res.length, improved=improved, optimal=False,
                    seconds=time.perf_counter() - sp,
                    expanded=res.stats.states_expanded,
                )
            )

    exact_engine = select_engine(graph, system)
    # A "bnb" selection is the deliberate high-CCR memory decision —
    # never overridden: HDA* is A*-family and holds full OPEN/CLOSED
    # lists in every worker.  The wastar fallback below is a size
    # decision, not a memory one, so workers may still upgrade it.
    memory_bound = exact_engine == "bnb"
    if exact_engine == "wastar":
        # The selector expects exact search to struggle here; still run
        # B&B last (memory-safe) so a generous deadline can prove bounds.
        exact_engine = "bnb"
    if workers > 1 and not memory_bound and graph.num_nodes > _HDA_MIN_V:
        # Large exact searches go multiprocess: HDA* keeps per-worker
        # dedup exact and reads the stage incumbent as its shared bound.
        exact_engine = "hda"
    run_improver = graph.num_nodes > _SMALL_V

    # -- stage 2: weighted-A* improver -------------------------------------
    left = remaining()
    if run_improver and (left is None or left > 0):
        s1 = time.perf_counter()
        improver_budget = Budget(
            max_expanded=None if max_expansions is None else max_expansions // 4,
            max_seconds=None if left is None else left * _IMPROVER_SHARE,
        )
        with tr.span("portfolio.improve",
                     attrs={"epsilon": epsilon, "cost": cost}):
            res = weighted_astar_schedule(
                graph, system, epsilon, cost=cost, pruning=pruning,
                budget=improver_budget, state_cls=state_cls, probe=probe,
            )
            tr.event("portfolio.stage.result", attrs={
                "stage": "improve", "algorithm": res.algorithm,
                "makespan": res.length,
                "expanded": res.stats.states_expanded,
            })
        if probe is not None:
            probe.rebase(res.stats.states_expanded)
        improved = res.schedule is not None and res.length < best.length
        if improved:
            best = res.schedule
            winner = "improve"
            winner_algo = res.algorithm
        if math.isfinite(res.bound):
            bound = min(bound, res.bound)
        lower = max(lower, res.lower_bound)
        total.merge(res.stats)
        stages.append(
            StageReport(
                stage="improve", algorithm=res.algorithm, makespan=res.length,
                improved=improved, optimal=res.optimal,
                seconds=time.perf_counter() - s1,
                expanded=res.stats.states_expanded,
            )
        )
        if res.optimal:
            # ε = 0 or a degenerate instance: the improver already proved
            # optimality; skip the exact stage.
            total.wall_seconds = time.perf_counter() - t0
            timeline = probe.timeline() if probe is not None else ()
            _emit_timeline(tr, timeline, label="improve")
            if pre is not None:
                best = pre.restore(best)
            return PortfolioResult(
                schedule=best, optimal=True, bound=1.0, stats=total,
                algorithm=res.algorithm, winner="improve",
                stages=tuple(stages), lower_bound=best.length,
                timeline=timeline,
            )

    # -- stage 3: exact engine seeded with the shared incumbent ------------
    # Worker-failure recovery: an HDA* attempt that lost a worker is
    # retried once with whatever deadline is left, then handed to the
    # serial engine — three attempts at most, each seeded with the
    # current incumbent.
    serial_exact = "bnb" if memory_bound else "astar"
    attempts = (
        [("exact", exact_engine), ("exact-retry", exact_engine),
         ("exact-serial", serial_exact)]
        if exact_engine == "hda"
        else [("exact", exact_engine)]
    )
    for stage_name, engine_name in attempts:
        left = remaining()
        if left is not None and left <= 0:
            break
        s2 = time.perf_counter()
        exact_budget = Budget(max_expanded=max_expansions, max_seconds=left,
                              max_memory_mb=max_memory_mb)
        with tr.span(f"portfolio.{stage_name}",
                     attrs={"engine": engine_name, "cost": cost}):
            res = _run_engine(
                engine_name, graph, system, budget=exact_budget,
                epsilon=epsilon, cost=cost, state_cls=state_cls,
                incumbent=best, workers=workers, probe=probe, tracer=tracer,
                pruning=pruning,
            )
            tr.event("portfolio.stage.result", attrs={
                "stage": stage_name, "algorithm": res.algorithm,
                "makespan": res.length,
                "expanded": res.stats.states_expanded,
                "optimal": res.optimal,
                "interrupted": res.interrupted,
            })
        if probe is not None:
            probe.rebase(res.stats.states_expanded)
        improved = res.schedule is not None and res.length < best.length
        if improved:
            best = res.schedule
        lower = max(lower, res.lower_bound)
        interrupted = res.interrupted
        if res.optimal:
            # The exact stage proves the *shared* incumbent optimal even
            # when it merely confirmed (rather than beat) it.
            optimal = True
            bound = 1.0
            winner = "exact"
            winner_algo = res.algorithm
        elif improved:
            winner = "exact"
            winner_algo = res.algorithm
        total.merge(res.stats)
        stages.append(
            StageReport(
                stage=stage_name, algorithm=res.algorithm, makespan=res.length,
                improved=improved, optimal=res.optimal,
                seconds=time.perf_counter() - s2,
                expanded=res.stats.states_expanded,
            )
        )
        if res.interrupted not in ("worker-failure", "worker-stall"):
            break  # finished, proved, or a plain budget stop — no retry

    total.wall_seconds = time.perf_counter() - t0
    timeline = probe.timeline() if probe is not None else ()
    _emit_timeline(tr, timeline, label="portfolio")
    if pre is not None:
        best = pre.restore(best)
    return PortfolioResult(
        schedule=best, optimal=optimal, bound=bound, stats=total,
        algorithm=winner_algo, winner=winner, stages=tuple(stages),
        lower_bound=best.length if optimal else min(lower, best.length),
        interrupted=None if optimal else interrupted,
        timeline=timeline,
    )


#: Longest sample list shipped inside one ``search.timeline`` event —
#: longer series are evenly downsampled (the endpoints always survive).
_TIMELINE_EVENT_CAP = 400


def _emit_timeline(tracer: Tracer, timeline: tuple, *, label: str) -> None:
    """Emit a convergence timeline as one ``search.timeline`` event."""
    if not timeline or not tracer.enabled:
        return
    samples = list(timeline)
    if len(samples) > _TIMELINE_EVENT_CAP:
        step = (len(samples) - 1) / (_TIMELINE_EVENT_CAP - 1)
        samples = [samples[round(i * step)] for i in range(_TIMELINE_EVENT_CAP)]
    tracer.event("search.timeline", attrs={
        "label": label,
        "samples": [s.as_dict() for s in samples],
    })
