"""``repro serve`` — the solver daemon: an asyncio HTTP front-end.

Everything below this module already existed as one-shot library calls
(fingerprint → dedupe → cache → portfolio → pool); what a long-running
deployment adds is *amortization* and *backpressure*:

* the :class:`~repro.parallel.mp_backend.SolverPool` is created once
  and reused for every request, so worker-process startup and module
  import cost are paid per server, not per request;
* the :class:`~repro.service.cache.ResultCache` stays open and warm
  across requests (and across restarts when backed by SQLite);
* admission control bounds the pending-job queue and answers HTTP 429
  when full, instead of buffering unbounded work;
* SIGTERM drains gracefully — accepted jobs finish, new submissions get
  503, the cache is flushed — so a rolling restart never loses results.

The HTTP layer is stdlib-only (``asyncio.start_server`` plus a minimal
HTTP/1.1 parser): one request per connection, JSON in, JSON out.

API
---
``POST /v1/solve``
    Body: the batch JSON-lines request object (``graph`` required;
    ``system``/``pes``, ``name`` optional) plus optional per-request
    solver overrides (``deadline``, ``epsilon``, ``max_expansions``,
    ``mode``, ``require_proven``) and ``wait`` (default ``true``).
    ``wait=true`` blocks until the job finishes and returns 200 with the
    job snapshot (result embedded); ``wait=false`` returns 202
    immediately — poll ``GET /v1/jobs/<id>``.  429 when the queue is
    full, 503 while draining, 400 on malformed requests.
``GET /v1/jobs/<id>``
    Job snapshot (status, and the result once done); 404 when unknown
    or evicted.
``GET /healthz``
    Liveness: 200 ``{"status": "ok"}`` (``"draining"`` during drain).
    ``?deep=1`` upgrades it to a *readiness* probe: verifies the
    solver pool's workers are alive and the result store accepts
    writes; 503 with per-check reasons when the daemon answers but
    cannot solve (or is draining) — the signal the fleet router keys
    health decisions on.
``GET /metrics``
    Queue depth, running/in-flight counts, job counters (cache hits,
    dedupe fan-out, rejects), per-engine solve counts, cache counters,
    and histogram-derived latency quantiles (request, queue wait,
    per-engine solve seconds).  ``?format=prometheus`` returns the same
    data in text exposition format 0.0.4 (cumulative histogram buckets
    included) for scraping.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs

from repro.errors import ReproError
from repro.obs.trace import Tracer
from repro.parallel.mp_backend import SolverPool
from repro.service import httpwire
from repro.service.cache import ResultCache
from repro.service.httpwire import BadRequest as _BadRequest
from repro.service.jobs import Draining, JobManager, QueueFull
from repro.testing import faults

__all__ = ["SolverServer"]

#: Seconds an idle or trickling client may take to deliver one request
#: before the connection is dropped (bounds handler-task lifetime).
_READ_TIMEOUT = httpwire.READ_TIMEOUT
#: Seconds the drain waits for the cache thread to flush and close
#: before abandoning a wedged store (see SolverServer.drain).
_CACHE_CLOSE_GRACE = 10.0


def _cache_barrier_noop() -> None:
    """Drain barrier for a caller-owned cache: proves the cache thread
    is still responsive without touching the cache itself."""


class SolverServer:
    """The daemon: owns the pool, the cache, the manager, the listener.

    Typical embedded use (tests, benchmarks, notebooks)::

        server = SolverServer(port=0, solver_workers=2)
        thread = server.serve_in_thread()        # returns once ready
        ...  # talk to it via repro.service.client.ServerClient
        server.shutdown()                        # drain + stop
        thread.join()

    Production use is ``repro serve`` (:func:`run` on the main thread,
    with SIGTERM/SIGINT wired to graceful drain).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        solver_workers: int = 1,
        queue_limit: int = 64,
        cache: ResultCache | str | Path | None = None,
        deadline: float | None = None,
        epsilon: float = 0.25,
        cost: str = "auto",
        max_expansions: int | None = 200_000,
        mode: str = "portfolio",
        require_proven: bool = False,
        max_memory_mb: float | None = None,
        preprocess: bool = False,
        warm: bool = True,
        obs_trace: str | Path | None = None,
        probe_every: int | None = None,
        shard_id: str | None = None,
        cache_capacity: int | None = None,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the real port after bind (port=0)
        # Identity within a sharded fleet (repro.service.router); also
        # printed on the readiness line so the router / soak harness
        # can scrape it together with the advertised address.
        self.shard_id = shard_id
        self._cache_capacity = cache_capacity
        self.solver_workers = solver_workers
        self.queue_limit = queue_limit
        self.warm = warm
        self._solver_defaults = {
            "deadline": deadline,
            "epsilon": epsilon,
            "cost": cost,
            "max_expansions": max_expansions,
            "mode": mode,
            "require_proven": require_proven,
            "max_memory_mb": max_memory_mb,
            "preprocess": preprocess,
        }
        # The server owns caches it constructs (in-memory default, or
        # from a path); a caller passing a live ResultCache keeps
        # ownership (shared with e.g. an in-process benchmark harness
        # reading counters).  Construction of owned caches is deferred
        # to start(), onto the dedicated cache thread that will carry
        # all subsequent cache I/O.
        self._owns_cache = not isinstance(cache, ResultCache)
        self._cache_arg = cache
        self.cache: ResultCache | None = (
            cache if isinstance(cache, ResultCache) else None
        )
        # Trace file opened in start() so the daemon's whole lifetime —
        # job lifecycle events, worker spans, timelines — lands in one
        # JSONL file readable by ``repro trace``.
        self._obs_trace = obs_trace
        self.probe_every = probe_every
        self.tracer: Tracer | None = None
        self.pool: SolverPool | None = None
        self.manager: JobManager | None = None
        self._cache_thread: ThreadPoolExecutor | None = None
        self.ready = threading.Event()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._drained = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the pool + runners."""
        # All ResultCache I/O goes through this single-worker executor
        # (construction included), so a slow or stalled file-backed
        # store can never wedge the event loop — /healthz keeps
        # answering while a put blocks (see DESIGN.md "Known limits").
        self._cache_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-cache"
        )
        if self.cache is None and self._owns_cache:
            make_cache = functools.partial(ResultCache, self._cache_arg)
            if self._cache_capacity is not None:
                make_cache = functools.partial(
                    ResultCache, self._cache_arg,
                    capacity=self._cache_capacity,
                )
            loop = asyncio.get_running_loop()
            self.cache = await loop.run_in_executor(
                self._cache_thread, make_cache
            )
        self.pool = SolverPool(self.solver_workers)
        if self.warm:
            self.pool.warm()
        if self._obs_trace is not None:
            self.tracer = Tracer(self._obs_trace)
        self.manager = JobManager(
            self.pool,
            cache=self.cache,
            cache_executor=self._cache_thread,
            queue_limit=self.queue_limit,
            tracer=self.tracer,
            probe_every=self.probe_every,
            shard_id=self.shard_id,
            **self._solver_defaults,
        )
        self.manager.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()

    async def drain(self) -> None:
        """Graceful stop: finish accepted jobs, flush, release resources."""
        if self._drained:
            return
        self._drained = True
        assert self.manager is not None and self.pool is not None
        await self.manager.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.pool.close()
        if self._cache_thread is not None:
            # Final cache-thread barrier, bounded: closing an owned
            # cache (or a plain no-op for a caller-owned one — the
            # caller keeps close()) queues behind any in-flight cache
            # operation, so a wedged store (stuck disk) would hang the
            # SIGTERM drain forever if we waited unconditionally.  On
            # timeout the worker is abandoned (shutdown(wait=False));
            # results already sit in the memory tier and were flushed
            # per-put, so nothing durable is lost.
            final_op = (
                self.cache.close
                if self.cache is not None and self._owns_cache
                else _cache_barrier_noop
            )
            loop = asyncio.get_running_loop()
            wedged = False
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(self._cache_thread, final_op),
                    timeout=_CACHE_CLOSE_GRACE,
                )
            except asyncio.TimeoutError:
                wedged = True
            self._cache_thread.shutdown(wait=not wedged)
            self._cache_thread = None
        if self.tracer is not None:
            self.tracer.close()
        self.ready.clear()

    async def _main(self, *, install_signals: bool) -> None:
        await self.start()
        assert self._stop is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        await self._stop.wait()
        await self.drain()

    def run(self, *, install_signals: bool = True) -> dict[str, Any]:
        """Serve until :meth:`shutdown` or SIGTERM/SIGINT, then drain.

        Returns the final metrics snapshot (the drain report).
        """
        asyncio.run(self._main(install_signals=install_signals))
        assert self.manager is not None
        return self.manager.metrics()

    def serve_in_thread(self) -> threading.Thread:
        """Start :meth:`run` on a daemon thread; block until ready."""
        thread = threading.Thread(
            target=self.run, kwargs={"install_signals": False}, daemon=True
        )
        thread.start()
        if not self.ready.wait(timeout=30):
            raise RuntimeError("server failed to become ready within 30s")
        return thread

    def shutdown(self) -> None:
        """Request drain + stop from any thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    # -- the HTTP layer ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - never kill the acceptor
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        # Backpressure responses advertise when to come back, so
        # well-behaved clients (ServerClient included) retry instead of
        # hammering or giving up.  The hint is adaptive: queue depth
        # times recent solve time, not a fixed constant that would have
        # the whole rejected burst re-arrive while the queue is still
        # full (see JobManager.retry_after_hint).
        retry_after = ""
        if status in (429, 503):
            hint = (
                self.manager.retry_after_hint() if self.manager is not None
                else 1
            )
            retry_after = f"Retry-After: {hint}\r\n"
        await httpwire.deliver_response(
            writer,
            httpwire.render_response(
                status, payload, extra_headers=retry_after
            ),
        )

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any] | str]:
        """Parse one request and route it; returns (status, JSON body)."""
        try:
            method, path, body = await asyncio.wait_for(
                self._read_request(reader), timeout=_READ_TIMEOUT
            )
        except asyncio.TimeoutError:
            return 408, {"error": f"request not received in {_READ_TIMEOUT}s"}
        except _BadRequest as exc:
            return exc.status, {"error": str(exc)}
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            # ValueError covers StreamReader's oversized-line (64 KiB)
            # conversion of LimitOverrunError inside readline().
            return 400, {"error": "unreadable request"}
        return await self._route(method, path, body)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Read one HTTP/1.1 request (shared wire dialect)."""
        return await httpwire.read_request(reader)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any] | str]:
        assert self.manager is not None
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            status = "draining" if self.manager.draining else "ok"
            deep = parse_qs(query).get("deep", ["0"])[-1]
            if deep in ("1", "true"):
                return await self._deep_health(status)
            return 200, {"status": status}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            fmt = parse_qs(query).get("format", ["json"])[-1]
            if fmt == "prometheus":
                return 200, self.manager.prometheus()
            if fmt != "json":
                return 400, {"error": f"unknown format {fmt!r}"}
            return 200, self.manager.metrics()
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            job = self.manager.get(path.removeprefix("/v1/jobs/"))
            if job is None:
                return 404, {"error": "unknown job id"}
            return 200, job.snapshot()
        if path == "/v1/solve":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._solve(body)
        return 404, {"error": f"no route {method} {path}"}

    async def _deep_health(
        self, status: str
    ) -> tuple[int, dict[str, Any]]:
        """``/healthz?deep=1``: readiness, not mere liveness.

        The shallow probe proves the event loop answers; this one
        proves the daemon can *do its job* — the solver pool's worker
        processes are alive (non-blocking inspection, so a busy pool
        stays green) and the result store accepts writes (a scratch
        write on the cache thread, bounded so a wedged disk reads as
        unhealthy).  A draining daemon is deep-unhealthy by definition:
        it answers but accepts no work, which is exactly what the fleet
        router needs to know to stop routing here.
        """
        assert self.manager is not None
        checks = await self.manager.deep_checks()
        if status != "ok":
            verdict = status  # draining
        elif all(v == "ok" for v in checks.values()):
            verdict = "ok"
        else:
            verdict = "unhealthy"
        payload: dict[str, Any] = {"status": verdict, "checks": checks}
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return (200 if verdict == "ok" else 503), payload

    async def _solve(self, body: bytes) -> tuple[int, dict[str, Any]]:
        assert self.manager is not None
        # Chaos hook: a whole-shard hard death (os._exit, no cleanup)
        # at the moment a request is being accepted — the closest
        # in-tree stand-in for an OOM-killed or SIGKILLed shard the
        # fleet router must absorb (tests/chaos/test_router_chaos.py).
        faults.crash_point("shard-crash")
        try:
            obj = json.loads(body)
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(obj, dict):
            return 400, {"error": "request body must be a JSON object"}
        wait = obj.get("wait", True)
        if not isinstance(wait, bool):
            return 400, {"error": f"wait must be a boolean, got {wait!r}"}
        try:
            # prepare() is pure CPU (graph parse + WL-refinement
            # fingerprint — seconds for very large graphs) and runs on
            # a thread so the loop keeps serving /healthz and friends;
            # the cache lookup runs on the dedicated cache thread for
            # the same reason; admit() touches shared state and stays
            # on the loop.
            loop = asyncio.get_running_loop()
            prepared = await loop.run_in_executor(
                None, self.manager.prepare, obj
            )
            cached = await self.manager.cache_lookup(prepared)
            job = self.manager.admit(prepared, cached=cached)
        except Draining as exc:
            return 503, {"error": str(exc)}
        except QueueFull as exc:
            return 429, {"error": str(exc)}
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"bad request: {type(exc).__name__}: {exc}"}
        if wait:
            await job.done.wait()
            if job.state == "failed":
                return 500, job.snapshot()
            return 200, job.snapshot()
        return 202, job.snapshot()
