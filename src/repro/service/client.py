"""Small blocking client for the solver daemon (stdlib ``http.client``).

The daemon speaks plain JSON-over-HTTP, so any HTTP client works; this
helper exists so library code, tests, and the benchmark harness share
one correct implementation of the request schema::

    from repro.service.client import ServerClient

    client = ServerClient(port=8080)
    out = client.solve(graph, pes=4)          # blocks until solved
    print(out["result"]["makespan"])

    job_id = client.submit(graph, pes=4)      # fire and forget
    out = client.wait(job_id)                 # poll until done

The server closes every connection after one response, so each call
opens a fresh connection — fine on localhost, and it keeps the client
free of pooling state.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any

from repro.graph.io import graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.parallel.mp_backend import system_to_args
from repro.system.processors import ProcessorSystem

__all__ = ["ServerClient", "ServerError", "DaemonUnavailable"]

#: Longest a single retry backoff sleeps (seconds), Retry-After included.
_BACKOFF_CAP = 2.0


class ServerError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict[str, Any]):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class DaemonUnavailable(ConnectionError):
    """The daemon could not be reached (after retries).

    Subclasses :class:`ConnectionError` so pre-existing handlers keep
    working; carries the last transport error as ``__cause__``.
    """


class ServerClient:
    """Talk to a running ``repro serve`` daemon.

    Checked calls (``solve``, ``submit``, ``metrics``, ...) retry
    transient failures with capped exponential backoff plus jitter:
    transport errors (connection refused/reset, daemon restarting) and
    backpressure statuses (429 queue-full, 503 draining — honoring the
    server's ``Retry-After`` hint).  ``retries=0`` disables retrying.
    The raw :meth:`request` primitive never retries.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, *,
        timeout: float = 300.0, retries: int = 3, backoff: float = 0.1,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- transport -----------------------------------------------------------

    def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One HTTP round-trip, no retries; ``(status, decoded JSON)``."""
        status, data, _ = self._request_raw(method, path, body)
        return status, data

    def _request_raw(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """One round-trip returning ``(status, JSON, lowercase headers)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            got = {k.lower(): v for k, v in response.getheaders()}
            return response.status, data, got
        finally:
            conn.close()

    def _sleep_before_retry(
        self, attempt: int, retry_after: str | None
    ) -> None:
        """Exponential backoff with full jitter; ``Retry-After`` wins
        when the server sent one (still capped and jittered so a herd
        of clients does not return in lockstep)."""
        delay = min(self.backoff * (2 ** attempt), _BACKOFF_CAP)
        if retry_after is not None:
            try:
                delay = min(max(delay, float(retry_after)), _BACKOFF_CAP)
            except ValueError:
                pass
        time.sleep(delay * (0.5 + 0.5 * random.random()))

    def _checked(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Round-trip with retries; raises :class:`ServerError` on a
        final non-2xx and :class:`DaemonUnavailable` when the daemon
        never answered."""
        last_exc: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                status, data, headers = self._request_raw(method, path, body)
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                last_exc = exc
                if attempt >= self.retries:
                    break
                self._sleep_before_retry(attempt, None)
                continue
            if status in (429, 503) and attempt < self.retries:
                self._sleep_before_retry(attempt, headers.get("retry-after"))
                continue
            if status >= 300:
                raise ServerError(status, data)
            return data
        raise DaemonUnavailable(
            f"daemon at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempt(s): "
            f"{type(last_exc).__name__}: {last_exc}"
        ) from last_exc

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._checked("GET", "/metrics")

    def job(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def solve_request(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        *,
        pes: int | None = None,
        name: str | None = None,
        wait: bool = True,
        **options: Any,
    ) -> dict[str, Any]:
        """Build a ``POST /v1/solve`` body from library objects.

        ``options`` may carry the per-request solver overrides the
        server accepts: ``deadline``, ``epsilon``, ``max_expansions``,
        ``mode``, ``require_proven``.
        """
        body: dict[str, Any] = {"graph": graph_to_dict(graph), "wait": wait}
        if system is not None:
            body["system"] = system_to_args(system)
        if pes is not None:
            body["pes"] = pes
        if name is not None:
            body["name"] = name
        body.update(options)
        return body

    def solve(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        **kwargs: Any,
    ) -> dict[str, Any]:
        """Solve synchronously; returns the finished job snapshot.

        The snapshot's ``"result"`` key holds makespan, certificate,
        algorithm, and the ``[[node, pe, start], ...]`` assignment.
        """
        body = self.solve_request(graph, system, wait=True, **kwargs)
        return self._checked("POST", "/v1/solve", body)

    def submit(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        **kwargs: Any,
    ) -> str:
        """Enqueue asynchronously; returns the job id to poll."""
        body = self.solve_request(graph, system, wait=False, **kwargs)
        return self._checked("POST", "/v1/solve", body)["id"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05,
        poll_cap: float = 1.0,
    ) -> dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until the job leaves the queue.

        The poll interval starts at ``poll`` and grows 1.5x per round
        up to ``poll_cap``, so long solves do not hammer the daemon
        while short ones still return promptly.  Backpressure answers
        (429/503 — e.g. the daemon started draining mid-poll, or a
        router briefly has no healthy shard) honor the server's
        ``Retry-After`` hint exactly like :meth:`solve` does, instead
        of surfacing as errors.  Raises :class:`DaemonUnavailable`
        after ``retries + 1`` consecutive transport failures (daemon
        died mid-poll), :class:`ServerError` on any other non-2xx, and
        :class:`TimeoutError` when the job outlives ``timeout``.
        """
        t0 = time.monotonic()
        interval = poll
        transport_failures = 0
        last_state = "unknown"
        last_exc: Exception | None = None
        path = f"/v1/jobs/{job_id}"
        while True:
            try:
                status, data, headers = self._request_raw("GET", path)
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                last_exc = exc
                transport_failures += 1
                if transport_failures > self.retries:
                    raise DaemonUnavailable(
                        f"daemon at {self.host}:{self.port} unreachable after "
                        f"{transport_failures} attempt(s): "
                        f"{type(exc).__name__}: {exc}"
                    ) from last_exc
                self._sleep_before_retry(transport_failures - 1, None)
                continue
            transport_failures = 0
            if status in (429, 503):
                if time.monotonic() - t0 > timeout:
                    raise TimeoutError(
                        f"job {job_id} still {last_state} after {timeout}s"
                    )
                self._sleep_before_retry(0, headers.get("retry-after"))
                continue
            if status >= 300:
                raise ServerError(status, data)
            last_state = data["status"]
            if last_state in ("done", "failed"):
                return data
            if time.monotonic() - t0 > timeout:
                raise TimeoutError(
                    f"job {job_id} still {last_state} after {timeout}s"
                )
            time.sleep(interval)
            interval = min(interval * 1.5, poll_cap)
