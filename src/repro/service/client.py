"""Small blocking client for the solver daemon (stdlib ``http.client``).

The daemon speaks plain JSON-over-HTTP, so any HTTP client works; this
helper exists so library code, tests, and the benchmark harness share
one correct implementation of the request schema::

    from repro.service.client import ServerClient

    client = ServerClient(port=8080)
    out = client.solve(graph, pes=4)          # blocks until solved
    print(out["result"]["makespan"])

    job_id = client.submit(graph, pes=4)      # fire and forget
    out = client.wait(job_id)                 # poll until done

The server closes every connection after one response, so each call
opens a fresh connection — fine on localhost, and it keeps the client
free of pooling state.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro.graph.io import graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.parallel.mp_backend import system_to_args
from repro.system.processors import ProcessorSystem

__all__ = ["ServerClient", "ServerError"]


class ServerError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict[str, Any]):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class ServerClient:
    """Talk to a running ``repro serve`` daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, *,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One HTTP round-trip; returns ``(status, decoded JSON)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            return response.status, data
        finally:
            conn.close()

    def _checked(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        status, data = self.request(method, path, body)
        if status >= 300:
            raise ServerError(status, data)
        return data

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._checked("GET", "/metrics")

    def job(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def solve_request(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        *,
        pes: int | None = None,
        name: str | None = None,
        wait: bool = True,
        **options: Any,
    ) -> dict[str, Any]:
        """Build a ``POST /v1/solve`` body from library objects.

        ``options`` may carry the per-request solver overrides the
        server accepts: ``deadline``, ``epsilon``, ``max_expansions``,
        ``mode``, ``require_proven``.
        """
        body: dict[str, Any] = {"graph": graph_to_dict(graph), "wait": wait}
        if system is not None:
            body["system"] = system_to_args(system)
        if pes is not None:
            body["pes"] = pes
        if name is not None:
            body["name"] = name
        body.update(options)
        return body

    def solve(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        **kwargs: Any,
    ) -> dict[str, Any]:
        """Solve synchronously; returns the finished job snapshot.

        The snapshot's ``"result"`` key holds makespan, certificate,
        algorithm, and the ``[[node, pe, start], ...]`` assignment.
        """
        body = self.solve_request(graph, system, wait=True, **kwargs)
        return self._checked("POST", "/v1/solve", body)

    def submit(
        self,
        graph: TaskGraph,
        system: ProcessorSystem | None = None,
        **kwargs: Any,
    ) -> str:
        """Enqueue asynchronously; returns the job id to poll."""
        body = self.solve_request(graph, system, wait=False, **kwargs)
        return self._checked("POST", "/v1/solve", body)["id"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until the job leaves the queue."""
        t0 = time.monotonic()
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] in ("done", "failed"):
                return snapshot
            if time.monotonic() - t0 > timeout:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after {timeout}s"
                )
            time.sleep(poll)
