"""Compatibility shim: canonical fingerprints moved down the stack.

The implementation lives in :mod:`repro.schedule.fingerprint` — it
only depends on graph/schedule/system/util, and keeping it in the
service layer forced :mod:`repro.workloads` to import *upward* through
a deferred function-local import (a layering violation the ``layering``
lint rule now rejects).  This module re-exports the public surface so
existing ``repro.service.fingerprint`` imports keep working.
"""

from repro.schedule.fingerprint import (
    assignment_from_canonical,
    canonical_assignment,
    canonical_graph,
    canonical_order,
    instance_fingerprint,
    refined_node_keys,
)

__all__ = [
    "canonical_order",
    "canonical_graph",
    "instance_fingerprint",
    "canonical_assignment",
    "assignment_from_canonical",
    "refined_node_keys",
]
