"""The solver service layer: the engines packaged as a request server.

The search engines under :mod:`repro.search` answer one instance at a
time; this package turns the collection into something that can serve
traffic:

* canonical instance identity — a stable 128-bit key for (graph,
  system, cost model) invariant under node relabeling, so identical
  problems hash identically however the caller numbered their tasks;
  the implementation lives in :mod:`repro.schedule.fingerprint` (it
  has no service-layer dependencies) and is re-exported here and via
  the :mod:`repro.service.fingerprint` shim;
* :mod:`repro.service.cache` — a persistent result cache (in-memory LRU
  in front of an optional SQLite store) keyed by fingerprint, storing
  the schedule, its optimality certificate, and the search counters;
* :mod:`repro.service.portfolio` — a deadline-driven portfolio solver
  that races a list-schedule incumbent, a weighted-A* improver, and an
  exact engine (seeded with the incumbent bound), plus the static
  engine-selection heuristic for the single-engine fast path;
* :mod:`repro.service.batch` — the batch front-end: solve a directory,
  a JSON-lines stream, or the §4.1 suite with fingerprint-level request
  deduplication, cache reuse, and multi-process dispatch;
* :mod:`repro.service.server` / :mod:`repro.service.jobs` — the solver
  daemon (``repro serve``): an asyncio HTTP front-end with a persistent
  worker pool, bounded admission queue, in-flight dedupe fan-out, and
  graceful SIGTERM drain;
* :mod:`repro.service.client` — a small blocking client for the daemon;
* :mod:`repro.service.router` / :mod:`repro.service.shardcache` /
  :mod:`repro.service.fleet` — the fleet layer (``repro route``):
  consistent-hash routing of fingerprints across N shard daemons with
  health probing, per-shard circuit breakers, failover, drain/rejoin,
  pluggable (shareable) cache backends, and local shard supervision.
"""

from repro.service.batch import (
    BatchItem,
    BatchReport,
    ItemOutcome,
    item_from_request,
    items_from_suite,
    load_items,
    run_batch,
)
from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import DaemonUnavailable, ServerClient, ServerError
from repro.service.fleet import ShardProcess, spawn_fleet, spawn_shard
from repro.service.fingerprint import (
    assignment_from_canonical,
    canonical_assignment,
    canonical_graph,
    canonical_order,
    instance_fingerprint,
)
from repro.service.jobs import Draining, Job, JobManager, QueueFull
from repro.service.portfolio import (
    PortfolioResult,
    StageReport,
    portfolio_schedule,
    select_engine,
    solve_auto,
)
from repro.service.router import CircuitBreaker, HashRing, Shard, ShardRouter
from repro.service.server import SolverServer
from repro.service.shardcache import (
    CacheBackend,
    CacheBackendError,
    SQLiteBackend,
    backend_from_spec,
)

__all__ = [
    "BatchItem",
    "BatchReport",
    "CacheBackend",
    "CacheBackendError",
    "CacheEntry",
    "CircuitBreaker",
    "Draining",
    "HashRing",
    "ItemOutcome",
    "Job",
    "JobManager",
    "PortfolioResult",
    "QueueFull",
    "ResultCache",
    "SQLiteBackend",
    "ServerClient",
    "ServerError",
    "DaemonUnavailable",
    "Shard",
    "ShardProcess",
    "ShardRouter",
    "SolverServer",
    "StageReport",
    "assignment_from_canonical",
    "backend_from_spec",
    "canonical_assignment",
    "canonical_graph",
    "canonical_order",
    "instance_fingerprint",
    "item_from_request",
    "items_from_suite",
    "load_items",
    "portfolio_schedule",
    "run_batch",
    "select_engine",
    "solve_auto",
    "spawn_fleet",
    "spawn_shard",
]
