"""The batch front-end: many instances in, results + throughput out.

This is the service layer's request loop.  Given a list of
:class:`BatchItem` (from a directory of graph JSON files, a JSON-lines
stream, or the §4.1 suite), :func:`run_batch`:

1. fingerprints every request (:mod:`repro.service.fingerprint`);
2. **dedupes in flight**: requests sharing a fingerprint are solved
   once, and the result fans out to every requester — in its own node
   numbering, via the canonical assignment mapping;
3. consults the :class:`~repro.service.cache.ResultCache` so warm
   instances skip search entirely;
4. dispatches the remaining unique instances across OS processes (the
   same pool discipline and plain-dict serialization as
   :mod:`repro.parallel.mp_backend`), each solved by the portfolio
   ladder or the single-engine fast path;
5. writes fresh results back to the cache and reports aggregate
   throughput (instances/second, hit/dedupe counts).

JSON-lines request format (one object per line)::

    {"name": "job-1", "graph": {...graph schema v1...},
     "system": {...system args...} | omitted, "pes": 4 | omitted}

When ``system`` is omitted the instance targets the §4.1 convention —
a fully-connected homogeneous machine with ``pes`` (default: v) PEs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import WorkloadError
from repro.graph.io import graph_from_dict, graph_to_dict, load_graph_json
from repro.graph.taskgraph import TaskGraph
from repro.obs.trace import Tracer, null_tracer
from repro.parallel.mp_backend import SolverPool, system_from_args, system_to_args
from repro.schedule.schedule import Schedule
from repro.service.cache import CacheEntry, ResultCache
from repro.schedule.fingerprint import (
    assignment_from_canonical,
    canonical_assignment,
    canonical_order,
    instance_fingerprint,
)
from repro.testing import faults
from repro.service.portfolio import portfolio_schedule, select_cost, solve_auto
from repro.system.processors import ProcessorSystem
from repro.workloads.suite import WorkloadSuite, paper_suite, paper_target_system

__all__ = [
    "BatchItem",
    "ItemOutcome",
    "BatchReport",
    "item_from_request",
    "load_items",
    "items_from_suite",
    "run_batch",
]


@dataclass(frozen=True)
class BatchItem:
    """One solve request."""

    name: str
    graph: TaskGraph
    system: ProcessorSystem


@dataclass(frozen=True)
class ItemOutcome:
    """One request's answer plus how the service produced it."""

    name: str
    fingerprint: str
    makespan: float
    certificate: str  # "proven" | "epsilon" | "budget"
    algorithm: str
    winner: str  # portfolio stage ("" for cache hits / fast path)
    cached: bool  # served from the result cache
    shared: bool  # deduped onto another in-flight request
    seconds: float  # solver seconds (0 for cached/shared)
    schedule: Schedule = field(compare=False, repr=False, default=None)  # type: ignore[assignment]

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe row for result streams."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "makespan": self.makespan,
            "certificate": self.certificate,
            "algorithm": self.algorithm,
            "winner": self.winner,
            "cached": self.cached,
            "shared": self.shared,
            "seconds": self.seconds,
            "assignment": [
                [t.node, t.pe, t.start] for t in self.schedule.tasks
            ],
        }


@dataclass(frozen=True)
class BatchReport:
    """Everything :func:`run_batch` learned, plus throughput."""

    outcomes: tuple[ItemOutcome, ...]
    wall_seconds: float
    solved: int  # instances that actually ran a search
    cache_hits: int
    deduped: int  # requests served by an in-flight twin
    cache_counters: dict[str, int]
    #: True when the batch was cut short (SIGINT/SIGTERM): outcomes
    #: holds only the requests answered before the interrupt.
    interrupted: bool = False

    @property
    def instances_per_second(self) -> float:
        """End-to-end request throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.outcomes) / self.wall_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "instances": len(self.outcomes),
            "wall_seconds": self.wall_seconds,
            "instances_per_second": self.instances_per_second,
            "solved": self.solved,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "cache_counters": dict(self.cache_counters),
        }

    def render(self) -> str:
        """Human-readable summary table."""
        from repro.util.tables import render_table

        rows = [
            [
                o.name,
                o.makespan,
                o.certificate,
                "cache" if o.cached else ("dedup" if o.shared else o.algorithm),
                o.seconds,
            ]
            for o in self.outcomes
        ]
        table = render_table(
            ["instance", "length", "certificate", "via", "seconds"],
            rows,
            title="batch results",
            float_fmt="{:g}",
        )
        summary = (
            f"{len(self.outcomes)} instances in {self.wall_seconds:.3f}s "
            f"({self.instances_per_second:.2f}/s) — "
            f"{self.solved} solved, {self.cache_hits} cache hits, "
            f"{self.deduped} deduped"
        )
        if self.interrupted:
            summary += " [interrupted — partial results]"
        return f"{table}\n{summary}"


# -- request loading ---------------------------------------------------------


def _default_system(graph: TaskGraph, pes: int | None) -> ProcessorSystem:
    if pes is None:
        return paper_target_system(graph.num_nodes)
    return ProcessorSystem.fully_connected(pes, name=f"clique-{pes}")


def item_from_request(obj: dict[str, Any], name: str = "request") -> BatchItem:
    """Parse one request object (the module-level JSON schema) into a
    :class:`BatchItem`.  Shared by the JSON-lines loader and the HTTP
    daemon's ``POST /v1/solve`` body parser — one schema, one parser."""
    graph = graph_from_dict(obj["graph"])
    if "system" in obj and obj["system"] is not None:
        system = system_from_args(obj["system"])
    else:
        system = _default_system(graph, obj.get("pes"))
    return BatchItem(name=obj.get("name", name), graph=graph, system=system)


def load_items(path: str | Path, *, pes: int | None = None) -> list[BatchItem]:
    """Load solve requests from a directory or a JSON-lines file.

    A directory is scanned for ``*.json`` graph files (schema v1), each
    paired with the default §4.1 target system (or ``pes`` fully
    connected PEs).  Any other path is parsed as JSON lines in the
    module-level request format.

    Raises
    ------
    WorkloadError
        When the path holds no requests.
    """
    path = Path(path)
    items: list[BatchItem] = []
    if path.is_dir():
        for file in sorted(path.glob("*.json")):
            graph = load_graph_json(file)
            items.append(
                BatchItem(
                    name=file.stem, graph=graph,
                    system=_default_system(graph, pes),
                )
            )
    else:
        for i, line in enumerate(path.read_text().splitlines()):
            line = line.strip()
            if not line:
                continue
            items.append(item_from_request(json.loads(line), name=f"line-{i + 1}"))
    if not items:
        raise WorkloadError(f"no instances found at {path}")
    return items


def items_from_suite(suite: WorkloadSuite | None = None) -> list[BatchItem]:
    """The §4.1 workload as batch requests (default: the default suite)."""
    if suite is None:
        suite = paper_suite()
    # Named from the sweep coordinates, not inst.key: the key embeds the
    # fingerprint, and computing it here would canonicalize every graph
    # a second time just for a display name (run_batch fingerprints
    # everything itself).
    return [
        BatchItem(
            name=f"v{inst.size}-ccr{inst.ccr}-seed{inst.seed}",
            graph=inst.graph,
            system=inst.system,
        )
        for inst in suite
    ]


# -- the batch loop ----------------------------------------------------------


def run_batch(
    items: list[BatchItem],
    *,
    cache: ResultCache | None = None,
    workers: int = 1,
    solver_workers: int = 1,
    pool: SolverPool | None = None,
    deadline: float | None = None,
    epsilon: float = 0.25,
    cost: str = "auto",
    max_expansions: int | None = 200_000,
    mode: str = "portfolio",
    require_proven: bool = False,
    max_memory_mb: float | None = None,
    tracer: Tracer | None = None,
    probe_every: int | None = None,
    preprocess: bool = False,
) -> BatchReport:
    """Solve a batch of requests with dedupe, caching, and fan-out.

    Parameters
    ----------
    items:
        The requests.
    cache:
        Result cache consulted before and written after solving; ``None``
        disables caching (every unique fingerprint is solved).
    workers:
        OS processes for the solve fan-out (1 = in-process, no pool).
        Ignored when ``pool`` is given.
    solver_workers:
        Worker processes *per instance* for the exact search stage
        (the HDA* engine).  Effective on the in-process path and inside
        a caller-provided :class:`SolverPool` (its executor workers are
        non-daemonic); inside a transient ``workers > 1`` fan-out the
        two axes of parallelism compete for the same cores, so prefer
        one or the other.
    pool:
        A persistent :class:`~repro.parallel.mp_backend.SolverPool` to
        dispatch on.  The caller owns its lifetime — ``run_batch``
        neither warms nor closes it — which is how the solver daemon
        amortizes process startup across many requests.  ``None`` keeps
        the historical behavior: a transient pool per call when
        ``workers > 1``.
    deadline:
        Per-instance wall-clock budget in seconds.
    mode:
        ``"portfolio"`` runs the stage ladder per instance; ``"auto"``
        runs the single statically-selected engine.
    require_proven:
        Treat cached entries without an optimality proof as stale
        (re-solve and overwrite them).
    max_memory_mb:
        Per-solve process-RSS ceiling; a search that reaches it returns
        its incumbent and lower bound instead of growing unbounded.
    tracer:
        Structured-trace sink (:mod:`repro.obs.trace`).  Pool workers
        buffer their spans locally and the buffers are absorbed into
        this tracer when results return, so one trace file covers the
        whole batch.  ``None`` disables tracing at zero cost.
    probe_every:
        Convergence-sampling interval forwarded to each solve's
        :class:`~repro.obs.probe.SearchProbe`; the resulting timelines
        are emitted as ``search.timeline`` trace events.  ``None``
        disables the probe.
    preprocess:
        Forwarded to each solve (:mod:`repro.schedule.preprocess`):
        makespan-preserving graph reductions run before search and
        results are restored to request node space.  Fingerprints and
        cache entries are unchanged — an entry written with
        ``preprocess=True`` is a valid answer for the same instance
        without it (and vice versa), precisely because the reductions
        preserve the optimum.

    Returns
    -------
    BatchReport
        Outcomes in request order plus aggregate throughput.
    """
    if mode not in ("portfolio", "auto"):
        raise ValueError(f"unknown batch mode {mode!r}")
    tr = tracer if tracer is not None else null_tracer
    t0 = time.perf_counter()

    # Canonicalization is the per-request fixed cost; content-equal
    # graphs (the dedupe workload) share one WL run via the memo.
    order_memo: dict[TaskGraph, tuple[int, ...]] = {}
    orders: list[tuple[int, ...]] = []
    for item in items:
        order = order_memo.get(item.graph)
        if order is None:
            order = canonical_order(item.graph)
            order_memo[item.graph] = order
        orders.append(order)
    # Resolve the "auto" cost sentinel BEFORE fingerprinting (pure in
    # each instance's static features), so auto-costed requests share
    # fingerprints — dedupe and cache entries — with requests naming
    # the resolved cost explicitly.
    costs = [
        select_cost(item.graph, item.system)
        if cost in (None, "auto") else cost
        for item in items
    ]
    fps = [
        instance_fingerprint(item.graph, item.system, cost=c, order=order)
        for item, c, order in zip(items, costs, orders)
    ]

    # In-flight dedupe: first request per fingerprint is the representative.
    rep_index: dict[str, int] = {}
    for i, fp in enumerate(fps):
        rep_index.setdefault(fp, i)

    # Cache pass over the unique fingerprints.
    entries: dict[str, CacheEntry] = {}
    cache_hit_fps: set[str] = set()
    for fp, rep in rep_index.items():
        if cache is None:
            continue
        entry = cache.get(fp, require_proven=require_proven)
        if entry is not None and len(entry.assignment) == items[rep].graph.num_nodes:
            entries[fp] = entry
            cache_hit_fps.add(fp)
            tr.event("cache.hit", attrs={"fingerprint": fp})

    # Solve the remainder (the representative instance per fingerprint).
    todo = [fp for fp in rep_index if fp not in entries]
    solve_seconds: dict[str, float] = {}
    winners: dict[str, str] = {}
    interrupted = False
    if todo:
        jobs = [
            _job_for(items[rep_index[fp]], fp, deadline, epsilon,
                     costs[rep_index[fp]], max_expansions, mode,
                     solver_workers, max_memory_mb,
                     trace=tr.enabled,
                     trace_root=tr.current_span_id() if tr.enabled else None,
                     probe_every=probe_every, preprocess=preprocess)
            for fp in todo
        ]
        solved: list[dict[str, Any]] = []
        try:
            # The serial path appends as it goes so an interrupt keeps
            # every already-finished solve; the pool paths are
            # all-or-nothing (executor.map offers no partial recovery),
            # so an interrupt there salvages the cache hits only.
            with tr.span("batch.solve", attrs={"jobs": len(jobs)}):
                if pool is not None:
                    solved = pool.map(_worker_solve, jobs)
                elif workers > 1 and len(jobs) > 1:
                    with SolverPool(workers) as transient:
                        solved = transient.map(_worker_solve, jobs)
                else:
                    for job in jobs:
                        solved.append(_worker_solve(job))
        except KeyboardInterrupt:
            # SIGINT/SIGTERM mid-batch: report what is answered so far
            # instead of discarding finished work with a traceback.
            interrupted = True
        for fp, payload in zip(todo, solved):
            tr.absorb(payload.get("trace_events"))
            rep = items[rep_index[fp]]
            order = orders[rep_index[fp]]
            schedule = Schedule(
                rep.graph, rep.system,
                {
                    int(n): (int(pe), float(st))
                    for n, pe, st in payload["assignment"]
                },
            )
            entry = CacheEntry(
                fingerprint=fp,
                assignment=canonical_assignment(schedule, order),
                makespan=schedule.length,
                certificate=payload["certificate"],
                bound=payload["bound"],
                algorithm=payload["algorithm"],
                stats=payload["stats"],
            )
            entries[fp] = entry
            solve_seconds[fp] = payload["seconds"]
            winners[fp] = payload["winner"]
            if cache is not None and not cache.put(entry):
                # The store already held something better (possible when
                # require_proven re-solved a stale entry under a tighter
                # budget): serve that instead of the fresh, worse result.
                better = cache.get(fp)
                if better is not None and better.better_than(entry):
                    entries[fp] = better
                    winners.pop(fp, None)

    # Fan the unique results back out to every request.
    outcomes: list[ItemOutcome] = []
    for i, (item, fp) in enumerate(zip(items, fps)):
        entry = entries.get(fp)
        if entry is None:
            continue  # interrupted before this fingerprint was solved
        schedule = Schedule(
            item.graph, item.system,
            assignment_from_canonical(orders[i], entry.assignment),
        )
        is_rep = rep_index[fp] == i
        cached = fp in cache_hit_fps
        outcomes.append(
            ItemOutcome(
                name=item.name,
                fingerprint=fp,
                makespan=schedule.length,
                certificate=entry.certificate,
                algorithm=entry.algorithm,
                winner=winners.get(fp, "") if is_rep and not cached else "",
                cached=cached,
                shared=not is_rep,
                seconds=solve_seconds.get(fp, 0.0) if is_rep else 0.0,
                schedule=schedule,
            )
        )

    wall = time.perf_counter() - t0
    answered = set(entries)
    return BatchReport(
        outcomes=tuple(outcomes),
        wall_seconds=wall,
        solved=sum(1 for fp in todo if fp in answered),
        cache_hits=sum(1 for fp in fps if fp in cache_hit_fps),
        deduped=sum(
            1 for i, fp in enumerate(fps)
            if rep_index[fp] != i and fp not in cache_hit_fps
            and fp in answered
        ),
        cache_counters=cache.counters() if cache is not None else {},
        interrupted=interrupted,
    )


# -- worker side (top-level: picklable under spawn) --------------------------


def _job_for(
    item: BatchItem,
    fingerprint: str,
    deadline: float | None,
    epsilon: float,
    cost: str,
    max_expansions: int | None,
    mode: str,
    solver_workers: int = 1,
    max_memory_mb: float | None = None,
    *,
    trace: bool = False,
    trace_root: str | None = None,
    probe_every: int | None = None,
    preprocess: bool = False,
) -> dict[str, Any]:
    """Plain-dict job descriptor (same discipline as mp_backend seeds)."""
    return {
        "fingerprint": fingerprint,
        "graph": graph_to_dict(item.graph),
        "system": system_to_args(item.system),
        "deadline": deadline,
        "epsilon": epsilon,
        "cost": cost,
        "max_expansions": max_expansions,
        "mode": mode,
        "solver_workers": solver_workers,
        "max_memory_mb": max_memory_mb,
        "trace": trace,
        "trace_root": trace_root,
        "probe_every": probe_every,
        "preprocess": preprocess,
    }


def _worker_solve(job: dict[str, Any]) -> dict[str, Any]:
    """Solve one instance (in a pool worker or inline) to a plain dict."""
    # Chaos hooks — inert unless REPRO_FAULTS arms them.  The crash
    # point hard-exits the pool process (BrokenExecutor upstream); the
    # error point is a clean in-worker failure the pool survives.
    faults.crash_point("solve-crash")
    faults.raise_point("solve-error")
    graph = graph_from_dict(job["graph"])
    system = system_from_args(job["system"])
    # Buffering tracer: spans accumulate in memory and ride back on the
    # result payload (pool workers cannot share the parent's file sink).
    wtracer = Tracer(root=job.get("trace_root")) if job.get("trace") else None
    probe_every = job.get("probe_every")
    t0 = time.perf_counter()
    with (wtracer if wtracer is not None else null_tracer).span(
        "batch.item", attrs={"fingerprint": job["fingerprint"]}
    ):
        if job["mode"] == "portfolio":
            pres = portfolio_schedule(
                graph, system, deadline=job["deadline"], epsilon=job["epsilon"],
                cost=job["cost"], max_expansions=job["max_expansions"],
                workers=job.get("solver_workers", 1),
                max_memory_mb=job.get("max_memory_mb"),
                tracer=wtracer, probe_every=probe_every,
                preprocess=job.get("preprocess", False),
            )
            schedule = pres.schedule
            certificate = pres.certificate
            bound = pres.bound
            algorithm = pres.algorithm
            winner = pres.winner
            stats = pres.stats.as_dict()
            lower_bound = pres.lower_bound
            interrupted = pres.interrupted
        else:
            res = solve_auto(
                graph, system, deadline=job["deadline"], epsilon=job["epsilon"],
                cost=job["cost"], max_expansions=job["max_expansions"],
                workers=job.get("solver_workers", 1),
                max_memory_mb=job.get("max_memory_mb"),
                tracer=wtracer, probe_every=probe_every,
                preprocess=job.get("preprocess", False),
            )
            schedule = res.schedule
            certificate = res.certificate
            bound = res.bound
            algorithm = res.algorithm
            winner = ""
            stats = res.stats.as_dict()
            lower_bound = res.lower_bound
            interrupted = res.interrupted
    return {
        "fingerprint": job["fingerprint"],
        "assignment": [[t.node, t.pe, t.start] for t in schedule.tasks],
        "certificate": certificate,
        "bound": bound,
        "algorithm": algorithm,
        "winner": winner,
        "stats": stats,
        "seconds": time.perf_counter() - t0,
        "lower_bound": lower_bound,
        "interrupted": interrupted,
        "trace_events": wtracer.drain() if wtracer is not None else None,
    }
