"""``repro route`` — the fleet front-end: consistent-hash shard router.

One ``repro serve`` daemon is one failure domain: an OOM-killed pool or
a wedged store takes every in-flight client with it.  The fleet layout
puts N shard daemons behind this router, which hashes each request's
*instance fingerprint* onto a consistent-hash ring — the service-layer
twin of the HDA* backend's ``owner_of`` state partitioning
(:func:`repro.parallel.shared.owner_of`): one owner per key, computed
by pure arithmetic every process agrees on.  Routing by fingerprint
(not by connection or round-robin) is what keeps the shard-local
machinery effective: duplicate requests land on the same shard, so its
in-flight dedupe and LRU cache see them as one problem.

The hard part is not the ring — it is surviving shards that die, hang,
or lie, without losing accepted work:

* **Health tracking** — a background loop probes every shard's
  ``/healthz?deep=1`` (pool liveness + store writability, see
  :meth:`repro.service.jobs.JobManager.deep_checks`) while forwarding
  results feed the same per-shard circuit breaker passively.
* **Circuit breaker per shard** — ``closed`` until
  ``failure_threshold`` consecutive failures, then ``open`` (no
  traffic) for a capped-exponentially-growing timeout, then
  ``half-open``: one trial request (or a healthy probe) closes it,
  a failure re-opens it with a longer timeout.
* **Failover** — when a shard is open or dead, the request walks to
  the next distinct shard on the ring (the same successor order every
  time, so failover traffic is deterministic too), with
  capped-exponential backoff between attempts.
* **Drain / rejoin** — ``POST /admin/shards/<name>/drain`` removes
  only that shard's points from the ring: keys owned by the others do
  not move (the consistent-hashing minimal-remap property), so a
  rolling restart invalidates one shard's working set, not the
  fleet's.  ``/rejoin`` restores the exact same points.

Give the shards a shared cache backend (``--cache shared:PATH``, see
:mod:`repro.service.shardcache`) and a failover replay of an
already-solved fingerprint is a warm hit on the substitute shard
instead of a fresh search.

The router is availability-first: it never converts a retryable
infrastructure fault into a client-visible error while any shard can
still answer, and when none can, it answers 503 with a ``Retry-After``
hint — the same backpressure contract the daemon itself speaks.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import signal
import threading
import time
from typing import Any, Callable
from urllib.parse import parse_qs

from repro.obs.metrics import _escape_label_value, _format_value
from repro.schedule.fingerprint import canonical_order, instance_fingerprint
from repro.service import httpwire
from repro.service.batch import item_from_request
from repro.service.httpwire import BadRequest as _BadRequest
from repro.service.portfolio import select_cost
from repro.util.hashing import MASK64, splitmix64

__all__ = ["CircuitBreaker", "HashRing", "Shard", "ShardRouter"]

#: Virtual nodes per shard on the ring.  Enough replicas smooth the
#: keyspace split (relative imbalance ~ 1/sqrt(replicas)) while keeping
#: membership changes cheap; 64 is plenty for single-digit fleets.
_DEFAULT_REPLICAS = 64

#: Circuit-breaker defaults: trip after 3 consecutive failures, stay
#: open 1s initially, doubling per re-trip up to 30s.
_FAILURE_THRESHOLD = 3
_RESET_TIMEOUT = 1.0
_MAX_RESET_TIMEOUT = 30.0

#: Failover backoff between forwarding attempts (capped exponential).
_RETRY_BASE = 0.05
_RETRY_CAP = 1.0

#: Seconds between background health probes, and the probe round-trip
#: budget (a deep probe includes a store write; see jobs._DEEP_PROBE_TIMEOUT).
_PROBE_INTERVAL = 0.5
_PROBE_TIMEOUT = 6.0

#: Default budget for one forwarded solve (matches ServerClient's).
_FORWARD_TIMEOUT = 300.0


def _ring_point(name: str, replica: int) -> int:
    """Deterministic 64-bit ring position for one virtual node.

    BLAKE2b for stable cross-process bytes (builtin ``hash`` is
    seed-randomized), splitmix64 for avalanche — the same finalizer
    the HDA* ``owner_of`` partitioner uses.
    """
    digest = hashlib.blake2b(
        f"{name}#{replica}".encode(), digest_size=8
    ).digest()
    return splitmix64(int.from_bytes(digest, "big"))


def _key_point(fingerprint: str) -> int:
    """Ring position of an instance fingerprint (32 hex chars,
    BLAKE2b-128): fold the first 64 bits through splitmix64."""
    return splitmix64(int(fingerprint[:16], 16) & MASK64)


class HashRing:
    """Consistent-hash ring with virtual nodes.

    ``owner`` maps a fingerprint to its shard; ``preference`` returns
    *all* members in ring-successor order from the key's position — the
    deterministic failover sequence.  Removing a member deletes only
    its own points: every key owned by a surviving member keeps its
    owner (minimal remap), which is why drain/rejoin only ever moves
    the drained shard's segment.
    """

    def __init__(
        self, names: "tuple[str, ...] | list[str]" = (),
        *, replicas: int = _DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for name in names:
            self.add(name)

    @property
    def members(self) -> set[str]:
        return set(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.replicas):
            bisect.insort(self._points, (_ring_point(name, i), name))

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        self._members.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    def owner(self, fingerprint: str) -> str | None:
        """The shard owning ``fingerprint`` (None on an empty ring)."""
        pref = self.preference(fingerprint)
        return pref[0] if pref else None

    def preference(self, fingerprint: str) -> list[str]:
        """All members, deduplicated, in successor order from the
        fingerprint's ring position: the failover walk."""
        if not self._points:
            return []
        key = _key_point(fingerprint)
        start = bisect.bisect_right(self._points, (key, "￿"))
        ordered: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for i in range(n):
            name = self._points[(start + i) % n][1]
            if name not in seen:
                seen.add(name)
                ordered.append(name)
                if len(seen) == len(self._members):
                    break
        return ordered

    def __len__(self) -> int:
        return len(self._members)


class CircuitBreaker:
    """Per-shard circuit breaker: closed → open → half-open.

    * ``closed`` — traffic flows; ``failure_threshold`` *consecutive*
      failures trip it open.
    * ``open`` — no traffic for the current reset timeout, which grows
      2x per consecutive trip up to ``max_reset_timeout`` (a shard
      that keeps failing gets probed less and less often).
    * ``half-open`` — entered when the timeout lapses: exactly one
      trial request is let through; success closes the breaker (and
      resets the timeout), failure re-opens it at the longer timeout.

    A healthy background probe calls :meth:`record_success` too, so
    recovery does not depend on sacrificing a client request.  The
    clock is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = _FAILURE_THRESHOLD,
        reset_timeout: float = _RESET_TIMEOUT,
        max_reset_timeout: float = _MAX_RESET_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if not 0 < reset_timeout <= max_reset_timeout:
            raise ValueError(
                f"need 0 < reset_timeout <= max_reset_timeout, got "
                f"{reset_timeout} / {max_reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.max_reset_timeout = max_reset_timeout
        self._clock = clock
        self._state = self.CLOSED
        self._open_until = 0.0
        self._next_timeout = reset_timeout
        self._trial_outstanding = False
        self.consecutive_failures = 0
        self.trips = 0  # closed/half-open -> open transitions

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a request be sent now?  (Mutates: an expired open period
        transitions to half-open and claims the single trial slot.)"""
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self._clock() >= self._open_until:
                self._state = self.HALF_OPEN
                self._trial_outstanding = True
                return True
            return False
        # half-open: one trial at a time.
        if not self._trial_outstanding:
            self._trial_outstanding = True
            return True
        return False

    def seconds_until_trial(self) -> float:
        """Time until the breaker would let a request through (0 when
        it already would) — feeds the router's Retry-After hint."""
        if self._state == self.OPEN:
            return max(0.0, self._open_until - self._clock())
        return 0.0

    def record_success(self) -> None:
        self._state = self.CLOSED
        self._trial_outstanding = False
        self.consecutive_failures = 0
        self._next_timeout = self.reset_timeout

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self._state in (self.OPEN, self.HALF_OPEN)
            or self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._trial_outstanding = False
        self._open_until = self._clock() + self._next_timeout
        self._next_timeout = min(
            self._next_timeout * 2, self.max_reset_timeout
        )
        self.trips += 1


class Shard:
    """Router-side state for one shard daemon."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if ":" in name or "/" in name:
            # Shard names prefix job ids as "<name>:<id>", so the name
            # itself must stay colon-free to parse back unambiguously.
            raise ValueError(f"shard name may not contain ':' or '/': {name!r}")
        self.name = name
        self.host = host
        self.port = port
        # A defaulted breaker may be re-equipped by the router with its
        # configured thresholds; an explicit one is kept as-is.
        self.breaker_defaulted = breaker is None
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.draining = False
        self.healthy: bool | None = None  # None until first probe
        self.forwarded = 0
        self.errors = 0
        self.probes = 0
        self.probe_failures = 0

    @classmethod
    def from_spec(cls, spec: str, index: int, **kwargs: Any) -> "Shard":
        """Parse ``HOST:PORT[=NAME]`` (the ``--shard`` CLI grammar)."""
        addr, _, name = spec.partition("=")
        host, _, port_s = addr.rpartition(":")
        if not host or not port_s.isdigit():
            raise ValueError(f"shard spec must be HOST:PORT[=NAME], got {spec!r}")
        return cls(name or f"shard{index}", host, int(port_s), **kwargs)

    def describe(self) -> dict[str, Any]:
        """Per-shard block of the router's ``/metrics`` JSON."""
        return {
            "host": self.host,
            "port": self.port,
            "state": self.breaker.state,
            "draining": self.draining,
            "healthy": self.healthy,
            "consecutive_failures": self.breaker.consecutive_failures,
            "breaker_trips": self.breaker.trips,
            "forwarded": self.forwarded,
            "errors": self.errors,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
        }


class ShardRouter:
    """The asyncio front-end routing solve traffic across shards.

    Lifecycle mirrors :class:`~repro.service.server.SolverServer`
    (``start``/``drain``/``run``/``serve_in_thread``/``shutdown``), so
    tests and the soak harness drive both the same way.

    API
    ---
    ``POST /v1/solve``
        Routed by instance fingerprint with failover (see module
        docstring).  Job ids in responses come back as
        ``<shard>:<id>``.
    ``GET /v1/jobs/<shard>:<id>``
        Forwarded to the owning shard.
    ``GET /healthz``
        Router liveness plus a per-shard one-liner.  ``?deep=1``: 200
        only while at least one shard is routable.
    ``GET /metrics``
        Routing counters + per-shard breaker/health state (JSON).
        ``?format=prometheus`` additionally live-scrapes every shard
        and re-emits its key gauges with a ``shard="<name>"`` label.
    ``POST /admin/shards/<name>/drain`` / ``.../rejoin``
        Remove/restore the shard's ring segment (see module docstring).
    """

    def __init__(
        self,
        shards: "list[Shard | str]",
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        replicas: int = _DEFAULT_REPLICAS,
        probe_interval: float = _PROBE_INTERVAL,
        probe_timeout: float = _PROBE_TIMEOUT,
        deep_probes: bool = True,
        forward_timeout: float = _FORWARD_TIMEOUT,
        retry_base: float = _RETRY_BASE,
        retry_cap: float = _RETRY_CAP,
        failure_threshold: int = _FAILURE_THRESHOLD,
        reset_timeout: float = _RESET_TIMEOUT,
        max_reset_timeout: float = _MAX_RESET_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the real port after bind (port=0)
        self.shards: dict[str, Shard] = {}
        for i, spec in enumerate(shards):
            shard = spec if isinstance(spec, Shard) else Shard.from_spec(spec, i)
            if shard.breaker_defaulted:
                # Equip the router's configured thresholds; a Shard
                # built with an explicit breaker keeps it (tests inject
                # fake clocks this way).
                shard.breaker = CircuitBreaker(
                    failure_threshold=failure_threshold,
                    reset_timeout=reset_timeout,
                    max_reset_timeout=max_reset_timeout,
                )
            if shard.name in self.shards:
                raise ValueError(f"duplicate shard name {shard.name!r}")
            self.shards[shard.name] = shard
        if not self.shards:
            raise ValueError("router needs at least one shard")
        self.ring = HashRing(list(self.shards), replicas=replicas)
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.deep_probes = deep_probes
        self.forward_timeout = forward_timeout
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.counters: dict[str, int] = {
            "requests": 0,
            "routed": 0,
            "failovers": 0,
            "no_shard": 0,
            "bad_requests": 0,
            "jobs_forwarded": 0,
            "probes": 0,
            "probe_failures": 0,
        }
        self.started_at = time.time()
        self.draining = False
        self.ready = threading.Event()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._health_task: asyncio.Task | None = None
        self._drained = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the health loop."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.probe_interval > 0:
            self._health_task = asyncio.create_task(
                self._health_loop(), name="router-health"
            )
        self.ready.set()

    async def drain(self) -> None:
        """Stop accepting, stop probing.  In-flight forwards finish on
        their own tasks; the shards own the actual jobs."""
        if self._drained:
            return
        self._drained = True
        self.draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.ready.clear()

    async def _main(self, *, install_signals: bool) -> None:
        await self.start()
        assert self._stop is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        await self._stop.wait()
        await self.drain()

    def run(self, *, install_signals: bool = True) -> dict[str, Any]:
        """Serve until :meth:`shutdown` or SIGTERM/SIGINT, then drain.

        Returns the final metrics snapshot.
        """
        asyncio.run(self._main(install_signals=install_signals))
        return self.metrics()

    def serve_in_thread(self) -> threading.Thread:
        """Start :meth:`run` on a daemon thread; block until ready."""
        thread = threading.Thread(
            target=self.run, kwargs={"install_signals": False}, daemon=True
        )
        thread.start()
        if not self.ready.wait(timeout=30):
            raise RuntimeError("router failed to become ready within 30s")
        return thread

    def shutdown(self) -> None:
        """Request drain + stop from any thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    # -- membership ----------------------------------------------------------

    def drain_shard(self, name: str) -> bool:
        """Remove one shard's points from the ring (graceful drain).

        Only the drained shard's keyspace segment remaps — every other
        fingerprint keeps its owner and therefore its shard-local
        cache/dedupe locality.  Returns False for unknown names.
        """
        shard = self.shards.get(name)
        if shard is None:
            return False
        shard.draining = True
        self.ring.remove(name)
        return True

    def rejoin_shard(self, name: str) -> bool:
        """Restore a drained shard's exact ring segment and close its
        breaker (the operator asserts it is back)."""
        shard = self.shards.get(name)
        if shard is None:
            return False
        shard.draining = False
        self.ring.add(name)
        shard.breaker.record_success()
        return True

    def routable_shards(self) -> list[str]:
        """Shards on the ring whose breaker is not open right now."""
        return [
            name for name in self.ring.members
            if self.shards[name].breaker.state != CircuitBreaker.OPEN
        ]

    # -- health probing ------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval)
            await asyncio.gather(
                *(self._probe(s) for s in list(self.shards.values()))
            )

    async def _probe(self, shard: Shard) -> None:
        """One health probe; feeds the shard's breaker both ways.

        Deep probes ask the shard to verify it can actually solve
        (pool + store), so a daemon that accepts connections but lost
        its workers goes amber here — before client traffic finds out.
        A success also closes an open breaker (recovery is driven by
        probes, not by sacrificed client requests).
        """
        path = "/healthz?deep=1" if self.deep_probes else "/healthz"
        shard.probes += 1
        self.counters["probes"] += 1
        try:
            status, _, _ = await httpwire.fetch(
                shard.host, shard.port, "GET", path,
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError, ConnectionError):
            status = None
        ok = status == 200
        shard.healthy = ok
        if ok:
            shard.breaker.record_success()
        else:
            shard.probe_failures += 1
            self.counters["probe_failures"] += 1
            shard.breaker.record_failure()

    # -- the HTTP layer ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, extra = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - never kill the acceptor
            status, payload, extra = (
                500, {"error": f"{type(exc).__name__}: {exc}"}, ""
            )
        if status in (429, 503) and "retry-after" not in extra.lower():
            extra += f"Retry-After: {self._retry_after_hint()}\r\n"
        await httpwire.deliver_response(
            writer,
            httpwire.render_response(status, payload, extra_headers=extra),
        )

    def _retry_after_hint(self) -> int:
        """Seconds until a rejected client should retry: when the
        nearest open breaker would allow a trial (min 1s)."""
        waits = [
            s.breaker.seconds_until_trial() for s in self.shards.values()
            if not s.draining
        ]
        ready = min(waits, default=0.0)
        return max(1, int(ready + 0.999))

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any] | str, str]:
        """Parse one request and route it: (status, body, extra headers)."""
        try:
            method, path, body = await asyncio.wait_for(
                httpwire.read_request(reader), timeout=httpwire.READ_TIMEOUT
            )
        except asyncio.TimeoutError:
            return 408, {"error": "request not received in time"}, ""
        except _BadRequest as exc:
            return exc.status, {"error": str(exc)}, ""
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            return 400, {"error": "unreadable request"}, ""
        return await self._route(method, path, body)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any] | str, str]:
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, ""
            deep = parse_qs(query).get("deep", ["0"])[-1]
            return self._healthz(deep in ("1", "true"))
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, ""
            fmt = parse_qs(query).get("format", ["json"])[-1]
            if fmt == "prometheus":
                return 200, await self._prometheus(), ""
            if fmt != "json":
                return 400, {"error": f"unknown format {fmt!r}"}, ""
            return 200, self.metrics(), ""
        if path == "/v1/solve":
            if method != "POST":
                return 405, {"error": "use POST"}, ""
            if self.draining:
                return 503, {"error": "router is draining"}, ""
            return await self._route_solve(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}, ""
            return await self._route_job(path.removeprefix("/v1/jobs/"))
        if path.startswith("/admin/shards"):
            return self._admin(method, path)
        return 404, {"error": f"no route {method} {path}"}, ""

    def _healthz(
        self, deep: bool
    ) -> tuple[int, dict[str, Any], str]:
        shard_view = {
            name: {
                "state": s.breaker.state,
                "draining": s.draining,
                "healthy": s.healthy,
            }
            for name, s in sorted(self.shards.items())
        }
        routable = self.routable_shards()
        status = "draining" if self.draining else "ok"
        if deep and status == "ok" and not routable:
            status = "unhealthy"
        payload = {
            "status": status,
            "routable_shards": len(routable),
            "shards": shard_view,
        }
        return (200 if status == "ok" else 503), payload, ""

    def _admin(
        self, method: str, path: str
    ) -> tuple[int, dict[str, Any], str]:
        if path == "/admin/shards":
            if method != "GET":
                return 405, {"error": "use GET"}, ""
            return 200, self.metrics()["shards"], ""
        parts = path.removeprefix("/admin/shards/").split("/")
        if len(parts) != 2 or parts[1] not in ("drain", "rejoin"):
            return 404, {"error": f"no admin route {path}"}, ""
        if method != "POST":
            return 405, {"error": "use POST"}, ""
        name, action = parts
        done = (
            self.drain_shard(name) if action == "drain"
            else self.rejoin_shard(name)
        )
        if not done:
            return 404, {"error": f"unknown shard {name!r}"}, ""
        return 200, {
            "shard": name,
            "action": action,
            "ring_members": sorted(self.ring.members),
        }, ""

    # -- solve routing -------------------------------------------------------

    def _routing_key(self, obj: dict[str, Any]) -> str:
        """The real instance fingerprint — identical to what the shard's
        JobManager.prepare computes, ``auto`` cost resolved first — so
        duplicates of one instance always map to one shard regardless
        of node numbering or how the cost was spelled.  Pure CPU; runs
        off the event loop.
        """
        item = item_from_request(obj, name="route")
        cost = obj.get("cost") or "auto"
        if cost == "auto":
            cost = select_cost(item.graph, item.system)
        order = canonical_order(item.graph)
        return instance_fingerprint(
            item.graph, item.system, cost=cost, order=order
        )

    async def _route_solve(
        self, body: bytes
    ) -> tuple[int, dict[str, Any] | str, str]:
        self.counters["requests"] += 1
        try:
            obj = json.loads(body)
            if not isinstance(obj, dict):
                raise ValueError("request body must be a JSON object")
            loop = asyncio.get_running_loop()
            fingerprint = await loop.run_in_executor(
                None, self._routing_key, obj
            )
        except Exception as exc:  # noqa: BLE001 - any parse/shape error
            # is the client's 400; real routing errors happen below.
            self.counters["bad_requests"] += 1
            return 400, {
                "error": f"bad request: {type(exc).__name__}: {exc}"
            }, ""
        return await self._forward_solve(fingerprint, body)

    async def _forward_solve(
        self, fingerprint: str, body: bytes
    ) -> tuple[int, dict[str, Any] | str, str]:
        """Walk the preference list with breaker gating and backoff."""
        attempts = 0
        last_gateway: tuple[int, dict[str, Any]] | None = None
        for name in self.ring.preference(fingerprint):
            shard = self.shards[name]
            if shard.draining or not shard.breaker.allow():
                continue
            if attempts:
                self.counters["failovers"] += 1
                await asyncio.sleep(
                    min(self.retry_cap,
                        self.retry_base * (2 ** (attempts - 1)))
                )
            attempts += 1
            shard.forwarded += 1
            try:
                status, headers, data = await httpwire.fetch(
                    shard.host, shard.port, "POST", "/v1/solve", body,
                    timeout=self.forward_timeout,
                )
            except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
                shard.errors += 1
                shard.breaker.record_failure()
                last_gateway = (502, {
                    "error": f"shard {name} unreachable: "
                             f"{type(exc).__name__}: {exc}"
                })
                continue
            if status in (500, 502, 503, 504):
                # The shard answered but could not serve (draining,
                # broken pool, unrecoverable failure): count it against
                # the breaker and try the next ring position — the
                # twin shard re-solves (or warm-hits a shared store).
                shard.errors += 1
                shard.breaker.record_failure()
                last_gateway = (status, self._decode(data, name))
                continue
            shard.breaker.record_success()
            if status == 429:
                # The owner is loaded, not broken.  Spilling the burst
                # onto other shards would defeat the shard-local dedupe
                # that makes the burst cheap; propagate the owner's
                # backpressure (and its adaptive Retry-After) instead.
                extra = ""
                if "retry-after" in headers:
                    extra = f"Retry-After: {headers['retry-after']}\r\n"
                return status, self._decode(data, name), extra
            self.counters["routed"] += 1
            payload = self._decode(data, name)
            if status < 300 and isinstance(payload, dict) and "id" in payload:
                payload["id"] = f"{name}:{payload['id']}"
                payload["shard"] = name
            return status, payload, ""
        if last_gateway is not None:
            status, payload = last_gateway
            return status if status == 503 else 502, payload, ""
        self.counters["no_shard"] += 1
        return 503, {
            "error": "no shard available "
                     f"({len(self.ring)} on ring, all open or draining)"
        }, ""

    @staticmethod
    def _decode(data: bytes, shard: str) -> dict[str, Any]:
        try:
            obj = json.loads(data or b"{}")
        except json.JSONDecodeError:
            return {"error": f"undecodable response from shard {shard}"}
        if not isinstance(obj, dict):
            return {"value": obj}
        return obj

    async def _route_job(
        self, job_ref: str
    ) -> tuple[int, dict[str, Any] | str, str]:
        """``GET /v1/jobs/<shard>:<id>`` — forward to the owning shard."""
        name, sep, raw_id = job_ref.partition(":")
        if not sep or name not in self.shards:
            return 404, {
                "error": f"unknown job reference {job_ref!r} "
                         "(expected <shard>:<id>)"
            }, ""
        shard = self.shards[name]
        self.counters["jobs_forwarded"] += 1
        try:
            status, _, data = await httpwire.fetch(
                shard.host, shard.port, "GET", f"/v1/jobs/{raw_id}",
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
            shard.breaker.record_failure()
            return 502, {
                "error": f"shard {name} unreachable: "
                         f"{type(exc).__name__}: {exc}"
            }, ""
        payload = self._decode(data, name)
        if status < 300 and isinstance(payload, dict) and "id" in payload:
            payload["id"] = f"{name}:{payload['id']}"
            payload["shard"] = name
        return status, payload, ""

    # -- introspection -------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """The router's ``GET /metrics`` JSON."""
        return {
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "routing": dict(self.counters),
            "shards": {
                name: shard.describe()
                for name, shard in sorted(self.shards.items())
            },
            "ring": {
                "members": sorted(self.ring.members),
                "replicas": self.ring.replicas,
            },
        }

    async def _prometheus(self) -> str:
        """Text exposition: router state plus a live scrape of every
        shard's own JSON metrics, re-emitted with ``shard`` labels —
        one endpoint covers the whole fleet."""
        m = self.metrics()
        lines: list[str] = []

        def gauge(name: str, value: float, help_text: str) -> None:
            lines.append(f"# HELP repro_router_{name} {help_text}")
            lines.append(f"# TYPE repro_router_{name} gauge")
            lines.append(
                f"repro_router_{name} {_format_value(float(value))}"
            )

        def labeled(
            name: str, per_shard: dict[str, float], help_text: str,
            kind: str = "gauge",
        ) -> None:
            lines.append(f"# HELP repro_router_{name} {help_text}")
            lines.append(f"# TYPE repro_router_{name} {kind}")
            for shard_name, value in sorted(per_shard.items()):
                esc = _escape_label_value(shard_name)
                lines.append(
                    f'repro_router_{name}{{shard="{esc}"}} '
                    f"{_format_value(float(value))}"
                )

        gauge("uptime_seconds", m["uptime_seconds"],
              "Seconds since the router started.")
        gauge("draining", float(m["draining"]),
              "1 while drain is in progress, else 0.")
        gauge("ring_members", len(m["ring"]["members"]),
              "Shards currently on the hash ring.")
        gauge("routable_shards", len(self.routable_shards()),
              "Ring members whose circuit breaker is not open.")
        for key, value in sorted(m["routing"].items()):
            lines.append(f"# HELP repro_router_{key}_total Routing counter.")
            lines.append(f"# TYPE repro_router_{key}_total counter")
            lines.append(
                f"repro_router_{key}_total {_format_value(float(value))}"
            )
        shards = m["shards"]
        labeled("shard_open",
                {n: 1.0 if s["state"] == CircuitBreaker.OPEN else 0.0
                 for n, s in shards.items()},
                "1 while the shard's circuit breaker is open.")
        labeled("shard_draining",
                {n: float(s["draining"]) for n, s in shards.items()},
                "1 while the shard is drained off the ring.")
        labeled("shard_forwarded_total",
                {n: s["forwarded"] for n, s in shards.items()},
                "Requests forwarded to the shard.", kind="counter")
        labeled("shard_errors_total",
                {n: s["errors"] for n, s in shards.items()},
                "Forwarding failures per shard.", kind="counter")
        labeled("shard_breaker_trips_total",
                {n: s["breaker_trips"] for n, s in shards.items()},
                "Circuit-breaker open transitions per shard.",
                kind="counter")

        # Live scrape: each shard's own gauges, labeled.  A shard that
        # does not answer in time shows up=0 — absence is itself the
        # signal, never a broken scrape.
        async def scrape(shard: Shard) -> tuple[str, dict[str, Any] | None]:
            try:
                status, _, data = await httpwire.fetch(
                    shard.host, shard.port, "GET", "/metrics",
                    timeout=self.probe_timeout,
                )
            except (OSError, asyncio.TimeoutError, ConnectionError):
                return shard.name, None
            if status != 200:
                return shard.name, None
            obj = self._decode(data, shard.name)
            return shard.name, obj if "queue_depth" in obj else None

        scraped = dict(await asyncio.gather(
            *(scrape(s) for s in self.shards.values())
        ))
        labeled("shard_up",
                {n: 0.0 if v is None else 1.0 for n, v in scraped.items()},
                "1 when the shard answered the metrics scrape.")
        for metric, help_text in (
            ("queue_depth", "Unique jobs queued on the shard."),
            ("dedup_followers",
             "Dedupe followers riding in-flight jobs on the shard."),
            ("running", "Jobs executing on the shard's pool."),
            ("in_flight", "Unique fingerprints in flight on the shard."),
        ):
            values = {
                n: float(v[metric]) for n, v in scraped.items()
                if v is not None and metric in v
            }
            if values:
                labeled(f"shard_{metric}", values, help_text)
        return "\n".join(lines) + "\n"
