"""Pluggable persistence backends for the result cache.

:class:`~repro.service.cache.ResultCache` is a two-tier structure: a
bounded in-memory LRU in front of an optional durable store.  This
module is the second tier made pluggable — a small
:class:`CacheBackend` interface plus the SQLite implementation that
used to live inline in ``cache.py``.  The split exists for the sharded
fleet (:mod:`repro.service.router`): shard daemons can point at a
*shared* store (``SQLiteBackend(path, shared=True)``, WAL journal +
busy timeout, safe across processes), so when the router fails a
request over to another shard after a crash, the replay hits a warm
result instead of re-running the search.

Error contract (what :class:`ResultCache` relies on):

* ``load``/``store``/``count``/``contains``/``probe`` raise
  :class:`CacheBackendError` for *store-level* failures (corrupt file,
  dead connection) — the cache counts those as stale and keeps serving
  from memory.
* Undecodable **payloads** (schema drift, crash-mangled rows) read as
  ``None`` — a miss, never an exception: the caller falls through to
  the solver whose fresh result then overwrites the bad row.
* Caller bugs (e.g. an entry whose stats are not JSON-serializable)
  propagate unchanged — they are not storage faults and must not be
  silently absorbed.

:class:`CacheEntry` lives here (not in ``cache.py``) purely to keep
the import direction single-file: backends serialize entries, the
cache builds on backends.  ``repro.service.cache`` re-exports both
names, so existing imports keep working.
"""

from __future__ import annotations

import abc
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "CacheEntry",
    "CacheBackendError",
    "CacheBackend",
    "SQLiteBackend",
    "backend_from_spec",
]


@dataclass(frozen=True)
class CacheEntry:
    """One cached solve, in canonical node space."""

    fingerprint: str
    assignment: tuple[tuple[int, float], ...]  # (pe, start) per canonical pos
    makespan: float
    certificate: str  # "proven" | "epsilon" | "budget" | "degraded"
    bound: float
    algorithm: str
    stats: dict[str, float] = field(default_factory=dict)
    created: float = 0.0

    @property
    def proven(self) -> bool:
        """True when the cached schedule carries an optimality proof."""
        return self.certificate == "proven"

    def better_than(self, other: "CacheEntry") -> bool:
        """Replacement order: proof first, then makespan."""
        if self.proven != other.proven:
            return self.proven
        return self.makespan < other.makespan

    #: Payload schema version; bump on any CacheEntry field change so
    #: stores written by other code versions read as misses, not crashes.
    SCHEMA = 1

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe payload (used by the SQLite store and reports)."""
        return {
            "schema": self.SCHEMA,
            "fingerprint": self.fingerprint,
            "assignment": [[pe, start] for pe, start in self.assignment],
            "makespan": self.makespan,
            "certificate": self.certificate,
            "bound": self.bound,
            "algorithm": self.algorithm,
            "stats": self.stats,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CacheEntry":
        if data.get("schema") != cls.SCHEMA:
            raise ValueError(f"unsupported cache payload schema {data.get('schema')!r}")
        return cls(
            fingerprint=data["fingerprint"],
            assignment=tuple(
                (int(pe), float(start)) for pe, start in data["assignment"]
            ),
            makespan=float(data["makespan"]),
            certificate=data["certificate"],
            bound=float(data["bound"]),
            algorithm=data["algorithm"],
            stats=dict(data.get("stats", {})),
            created=float(data.get("created", 0.0)),
        )


class CacheBackendError(RuntimeError):
    """A store-level backend failure (corrupt file, dead connection).

    :class:`~repro.service.cache.ResultCache` treats these like a stale
    read: counted, never fatal — the memory tier keeps serving.
    """


class CacheBackend(abc.ABC):
    """The durable tier behind :class:`ResultCache`'s in-memory LRU."""

    #: Short backend family name, surfaced in ``describe()`` and logs.
    kind: str = "backend"

    @abc.abstractmethod
    def load(self, fingerprint: str) -> CacheEntry | None:
        """Return the stored entry, or ``None`` when absent *or* when
        the stored payload is undecodable (schema drift reads as a
        miss).  Raises :class:`CacheBackendError` on store failure."""

    @abc.abstractmethod
    def store(self, entry: CacheEntry) -> None:
        """Durably upsert ``entry`` (last write wins; the replacement
        policy — proof first, then makespan — is the cache's job).
        Raises :class:`CacheBackendError` on store failure."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of durable entries."""

    @abc.abstractmethod
    def contains(self, fingerprint: str) -> bool:
        """Membership test without deserializing the payload."""

    def probe(self) -> None:
        """Verify the store is *writable* — the deep-readiness check
        (``/healthz?deep=1``).  Raises :class:`CacheBackendError` when
        it is not.  Default: nothing durable to verify."""

    def close(self) -> None:
        """Release resources; idempotent.  Default: nothing to release."""

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; operations may fail afterwards."""
        return False

    def describe(self) -> str:
        """Human-readable location, for ``repr`` and readiness lines."""
        return self.kind

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SQLiteBackend(CacheBackend):
    """The historical durable tier: one SQLite file.

    Parameters
    ----------
    path:
        Database file (created on first use).
    shared:
        Tune the connection for *multi-process* sharing — the fleet
        mode, where every shard daemon opens the same file.  Turns on
        WAL journaling (readers never block the single writer) and a
        busy timeout (a write colliding with another shard's commit
        retries for up to :data:`_BUSY_TIMEOUT_S` instead of raising
        ``database is locked``).  Off by default: the single-daemon
        layout keeps the exact pre-fleet journal behavior.
    """

    kind = "sqlite"

    #: Seconds a shared-mode connection waits on a locked database
    #: before surfacing the lock as a store failure.
    _BUSY_TIMEOUT_S = 5.0

    def __init__(self, path: str | Path, *, shared: bool = False) -> None:
        self.path = Path(path)
        self.shared = shared
        # check_same_thread=False: the daemon constructs the cache on
        # its event-loop thread but routes all get/put I/O through a
        # dedicated single-worker cache executor (see
        # repro.service.jobs), so the connection crosses threads.
        # CPython's sqlite3 is built in serialized mode
        # (threadsafety == 3), making the shared handle safe; the
        # single-worker executor keeps writes strictly ordered.
        self._db: sqlite3.Connection | None = sqlite3.connect(
            str(self.path),
            check_same_thread=False,
            timeout=self._BUSY_TIMEOUT_S if shared else 5.0,
        )
        try:
            if shared:
                self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " fingerprint TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL,"
                " makespan REAL NOT NULL,"
                " proven INTEGER NOT NULL,"
                " created REAL NOT NULL)"
            )
            self._db.commit()
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"cannot open store {self.path}: {exc}") from exc

    @property
    def connection(self) -> sqlite3.Connection | None:
        """The live handle (``None`` once closed); exposed for the
        cache's backward-compatible ``_db`` property."""
        return self._db

    def _conn(self) -> sqlite3.Connection:
        if self._db is None:
            raise CacheBackendError(f"store {self.path} is closed")
        return self._db

    def load(self, fingerprint: str) -> CacheEntry | None:
        try:
            row = self._conn().execute(
                "SELECT payload FROM results WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"load failed: {exc}") from exc
        if row is None:
            return None
        try:
            return CacheEntry.from_dict(json.loads(row[0]))
        except (ValueError, KeyError, TypeError):
            # Covers json.JSONDecodeError (a ValueError), schema
            # mismatches, and structurally-wrong payloads: a bad
            # payload is a miss, not a fault — the solver's fresh
            # result overwrites it.
            return None

    def store(self, entry: CacheEntry) -> None:
        # Serialize BEFORE touching the connection: a non-serializable
        # entry (caller bug) must propagate as-is, not masquerade as a
        # storage fault.
        payload = json.dumps(entry.as_dict())
        try:
            conn = self._conn()
            conn.execute(
                "INSERT OR REPLACE INTO results"
                " (fingerprint, payload, makespan, proven, created)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    entry.fingerprint,
                    payload,
                    entry.makespan,
                    int(entry.proven),
                    entry.created,
                ),
            )
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"store failed: {exc}") from exc

    def count(self) -> int:
        try:
            row = self._conn().execute("SELECT COUNT(*) FROM results").fetchone()
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"count failed: {exc}") from exc
        return int(row[0])

    def contains(self, fingerprint: str) -> bool:
        try:
            return (
                self._conn().execute(
                    "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
                ).fetchone()
                is not None
            )
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"contains failed: {exc}") from exc

    def probe(self) -> None:
        """Round-trip a write through a scratch table: proves the file
        is present, the journal is writable, and (in shared mode) the
        lock is obtainable — exactly what a result put will need."""
        try:
            conn = self._conn()
            conn.execute(
                "CREATE TABLE IF NOT EXISTS probe (k INTEGER PRIMARY KEY, v REAL)"
            )
            conn.execute("INSERT OR REPLACE INTO probe (k, v) VALUES (0, 0.0)")
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise CacheBackendError(f"probe write failed: {exc}") from exc

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None

    @property
    def closed(self) -> bool:
        return self._db is None

    def describe(self) -> str:
        mode = "shared sqlite" if self.shared else "sqlite"
        return f"{mode}:{self.path}"


def backend_from_spec(
    spec: "str | Path | CacheBackend | None",
) -> CacheBackend | None:
    """Resolve a CLI/embedding cache spec into a backend.

    ``None`` or ``"memory"``
        No durable tier (the cache stays purely in-memory).
    ``"shared:PATH"``
        :class:`SQLiteBackend` in multi-process shared mode — the
        fleet layout where every shard opens the same store.
    any other string / ``Path``
        :class:`SQLiteBackend` on that file (historical behavior).
    a :class:`CacheBackend`
        Passed through unchanged.
    """
    if spec is None:
        return None
    if isinstance(spec, CacheBackend):
        return spec
    if isinstance(spec, Path):
        return SQLiteBackend(spec)
    if spec == "memory" or spec == "":
        return None
    if spec.startswith("shared:"):
        target = spec.removeprefix("shared:")
        if not target:
            raise ValueError("shared: cache spec needs a path, got 'shared:'")
        return SQLiteBackend(target, shared=True)
    return SQLiteBackend(spec)
