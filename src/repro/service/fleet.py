"""Spawning and supervising local shard daemons.

The router (:mod:`repro.service.router`) only needs addresses — shards
can live anywhere.  This module covers the common local case: launch N
``repro serve`` subprocesses on ephemeral ports, scrape each one's
readiness line for the bound address, and keep a handle good for the
operations the chaos tests and the soak benchmark exercise — SIGKILL,
graceful terminate, and respawn on the same port so a revived shard
slots back into its old ring segment.

Each shard is started with ``--port 0`` (the kernel picks a free port)
and ``--shard-id``, which makes the daemon print::

    repro serve: listening on http://127.0.0.1:43117 shard=s0 (...)

A reader thread drains the child's merged stdout/stderr into a bounded
deque from the moment it starts (so the child can never block on a
full pipe) and parses that line for the advertised address.
"""

from __future__ import annotations

import collections
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path
from typing import Any

__all__ = ["ShardProcess", "spawn_shard", "spawn_fleet"]

#: How much child output to keep for post-mortems.
_OUTPUT_LINES = 200

_READY_RE = re.compile(
    r"listening on http://([^:\s]+):(\d+) shard=(\S+)"
)


def _child_env() -> dict[str, str]:
    """The child's environment: inherit, but make sure the running
    ``repro`` package wins the import race (tests run from a repo
    checkout where PYTHONPATH may not be exported)."""
    env = dict(os.environ)
    # This file is <root>/repro/service/fleet.py; the import root is
    # two levels up, wherever the package is installed or checked out.
    pkg_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{pkg_root}{os.pathsep}{existing}" if existing else pkg_root
        )
    return env


class ShardProcess:
    """One supervised ``repro serve`` subprocess.

    Constructed via :func:`spawn_shard`; after :meth:`wait_ready` the
    ``host``/``port`` attributes hold the advertised address (the real
    bound port even when started with ``--port 0``).
    """

    def __init__(
        self, name: str, argv: list[str], env: dict[str, str]
    ) -> None:
        self.name = name
        self.argv = argv
        self.host: str | None = None
        self.port: int | None = None
        self.output: collections.deque[str] = collections.deque(
            maxlen=_OUTPUT_LINES
        )
        self._ready = threading.Event()
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self.output.append(line.rstrip("\n"))
            if not self._ready.is_set():
                match = _READY_RE.search(line)
                if match and match.group(3) == self.name:
                    self.host = match.group(1)
                    self.port = int(match.group(2))
                    self._ready.set()
        # EOF: the child exited.  Unblock any waiter; wait_ready tells
        # readiness from death by checking host/port.
        self._ready.set()

    def wait_ready(self, timeout: float = 30.0) -> "ShardProcess":
        """Block until the readiness line was scraped; raises
        ``RuntimeError`` (with the child's output) on death/timeout."""
        if not self._ready.wait(timeout) or self.port is None:
            tail = "\n".join(self.output)
            self.kill()
            raise RuntimeError(
                f"shard {self.name} not ready within {timeout}s "
                f"(exit={self.proc.poll()}):\n{tail}"
            )
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the chaos case: no drain, no goodbye."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM and wait for the graceful drain to finish."""
        if self.alive:
            self.proc.terminate()
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            return self.proc.returncode

    def respawn(self, timeout: float = 30.0) -> "ShardProcess":
        """A fresh process for the same shard on the *same* port.

        The original argv asked for ``--port 0``; the replacement pins
        the port the dead shard had bound, so the router's existing
        address for this ring segment becomes valid again.
        """
        if self.alive:
            raise RuntimeError(f"shard {self.name} is still running")
        if self.port is None:
            raise RuntimeError(f"shard {self.name} was never ready")
        argv = list(self.argv)
        idx = argv.index("--port")
        argv[idx + 1] = str(self.port)
        return ShardProcess(self.name, argv, _child_env()).wait_ready(timeout)


def spawn_shard(
    name: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    solver_workers: int = 1,
    queue_limit: int = 64,
    cache: str | None = None,
    cache_capacity: int | None = None,
    deadline: float | None = None,
    max_expansions: int | None = None,
    timeout: float = 30.0,
    extra_args: "list[str] | None" = None,
    env: dict[str, str] | None = None,
) -> ShardProcess:
    """Launch one ``repro serve`` shard and wait for readiness.

    ``env`` entries overlay the inherited environment (the chaos tests
    plant ``REPRO_FAULTS`` here).  ``cache`` takes the same spec as
    ``repro serve --cache`` — pass ``shared:PATH`` to give the fleet a
    common durable tier.
    """
    argv: list[str] = [
        sys.executable, "-m", "repro", "serve",
        "--host", host,
        "--port", str(port),
        "--shard-id", name,
        "--solver-workers", str(solver_workers),
        "--queue-limit", str(queue_limit),
    ]
    if cache is not None:
        argv += ["--cache", str(cache)]
    if cache_capacity is not None:
        argv += ["--cache-capacity", str(cache_capacity)]
    if deadline is not None:
        argv += ["--deadline", str(deadline)]
    if max_expansions is not None:
        argv += ["--max-expansions", str(max_expansions)]
    if extra_args:
        argv += list(extra_args)
    child_env = _child_env()
    if env:
        child_env.update(env)
    return ShardProcess(name, argv, child_env).wait_ready(timeout)


def spawn_fleet(
    count: int, *, name_prefix: str = "s", **kwargs: Any
) -> list[ShardProcess]:
    """Spawn ``count`` shards (``s0``, ``s1``, ...), tearing down any
    already-started ones if a later spawn fails."""
    shards: list[ShardProcess] = []
    try:
        for i in range(count):
            shards.append(spawn_shard(f"{name_prefix}{i}", **kwargs))
    except Exception:
        for shard in shards:
            shard.kill()
        raise
    return shards
