"""Target-system substrate: processor networks the DAG is scheduled onto.

The paper's model (§2): processors (PEs) may be heterogeneous in speed,
do not share memory, and are connected by homogeneous links in some
topology (fully connected, ring, mesh, hypercube, …).  Communication
between tasks on the same PE is free.
"""

from repro.system.isomorphism import isomorphism_classes, processors_isomorphic
from repro.system.processors import ProcessorSystem
from repro.system.topology import (
    chain_links,
    fully_connected_links,
    hypercube_links,
    mesh_links,
    ring_links,
    star_links,
)

__all__ = [
    "ProcessorSystem",
    "processors_isomorphic",
    "isomorphism_classes",
    "fully_connected_links",
    "ring_links",
    "chain_links",
    "mesh_links",
    "hypercube_links",
    "star_links",
]
