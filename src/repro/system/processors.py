"""The processor network model.

A :class:`ProcessorSystem` is a set of processors with per-PE speed
factors connected by homogeneous links (paper §2).  Execution time of a
task with weight ``w`` on PE *p* is ``w / speed[p]``; homogeneous systems
use speed 1.0 everywhere so execution time equals the node weight, as in
the paper's examples.

Communication cost between tasks on different PEs defaults to the edge
weight regardless of hop distance (this matches every number in the
paper's Figure-3 search tree); an optional ``distance_scaled`` mode
multiplies the edge weight by hop count, the model the Chen & Yu
baseline's path-matching bound targets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.errors import SystemError_
from repro.system import topology as topo

__all__ = ["ProcessorSystem"]

Link = tuple[int, int]


class ProcessorSystem:
    """An immutable processor network.

    Parameters
    ----------
    num_pes:
        Number of processing elements p ≥ 1.
    links:
        Undirected link pairs; omitted or ``None`` means fully connected.
    speeds:
        Per-PE speed factors (all 1.0 when omitted → homogeneous).
    distance_scaled:
        When True, inter-PE communication cost is edge-weight × hop
        distance; when False (default, the paper's model) it is the edge
        weight whenever the PEs differ.
    name:
        Report label.
    """

    __slots__ = (
        "_num_pes",
        "_links",
        "_speeds",
        "_neighbors",
        "_dist",
        "name",
        "distance_scaled",
    )

    def __init__(
        self,
        num_pes: int,
        links: Iterable[Link] | None = None,
        speeds: Sequence[float] | None = None,
        *,
        distance_scaled: bool = False,
        name: str = "system",
    ) -> None:
        if num_pes < 1:
            raise SystemError_("need at least one processor")
        self._num_pes = num_pes
        if links is None:
            link_set = topo.fully_connected_links(num_pes)
        else:
            link_set = set()
            for i, j in links:
                if not (0 <= i < num_pes and 0 <= j < num_pes):
                    raise SystemError_(f"link ({i}, {j}) references unknown PE")
                if i == j:
                    raise SystemError_(f"self-link on PE {i}")
                link_set.add((i, j) if i < j else (j, i))
        self._links = frozenset(link_set)

        if speeds is None:
            self._speeds = (1.0,) * num_pes
        else:
            if len(speeds) != num_pes:
                raise SystemError_("speeds length must equal num_pes")
            for i, s in enumerate(speeds):
                if not (s > 0):
                    raise SystemError_(f"PE {i} has non-positive speed {s!r}")
            self._speeds = tuple(float(s) for s in speeds)

        neighbor_lists: list[set[int]] = [set() for _ in range(num_pes)]
        for i, j in self._links:
            neighbor_lists[i].add(j)
            neighbor_lists[j].add(i)
        self._neighbors = tuple(tuple(sorted(s)) for s in neighbor_lists)
        self._dist: tuple[tuple[int, ...], ...] | None = None
        self.distance_scaled = distance_scaled
        self.name = name

    # -- constructors --------------------------------------------------------

    @classmethod
    def fully_connected(cls, n: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """Clique of ``n`` PEs."""
        return cls(n, topo.fully_connected_links(n), speeds, name=name or f"clique-{n}")

    @classmethod
    def ring(cls, n: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """Ring of ``n`` PEs (the paper's Figure-1(b) uses n = 3)."""
        return cls(n, topo.ring_links(n), speeds, name=name or f"ring-{n}")

    @classmethod
    def chain(cls, n: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """Linear array of ``n`` PEs."""
        return cls(n, topo.chain_links(n), speeds, name=name or f"chain-{n}")

    @classmethod
    def mesh(cls, rows: int, cols: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """2-D mesh of ``rows × cols`` PEs (Paragon-style)."""
        return cls(
            rows * cols, topo.mesh_links(rows, cols), speeds,
            name=name or f"mesh-{rows}x{cols}",
        )

    @classmethod
    def hypercube(cls, dim: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """Hypercube of dimension ``dim``."""
        return cls(
            1 << dim, topo.hypercube_links(dim), speeds,
            name=name or f"hypercube-{dim}",
        )

    @classmethod
    def star(cls, n: int, *, speeds=None, name: str | None = None) -> "ProcessorSystem":
        """Star of ``n`` PEs with PE 0 as hub."""
        return cls(n, topo.star_links(n), speeds, name=name or f"star-{n}")

    # -- accessors -------------------------------------------------------------

    @property
    def num_pes(self) -> int:
        """Number of processors p."""
        return self._num_pes

    @property
    def links(self) -> frozenset[Link]:
        """Undirected link set."""
        return self._links

    @property
    def speeds(self) -> tuple[float, ...]:
        """Per-PE speed factors."""
        return self._speeds

    def speed(self, pe: int) -> float:
        """Speed factor of one PE."""
        return self._speeds[pe]

    @property
    def is_homogeneous(self) -> bool:
        """True when all PEs share one speed."""
        return len(set(self._speeds)) == 1

    def neighbors(self, pe: int) -> tuple[int, ...]:
        """PEs directly linked to ``pe`` (ascending order)."""
        return self._neighbors[pe]

    def degree(self, pe: int) -> int:
        """Node degree of ``pe`` in the processor graph."""
        return len(self._neighbors[pe])

    def exec_time(self, weight: float, pe: int) -> float:
        """Execution time of a task of weight ``weight`` on ``pe``."""
        return weight / self._speeds[pe]

    # -- distances ---------------------------------------------------------

    @property
    def hop_distance(self) -> tuple[tuple[int, ...], ...]:
        """All-pairs hop-distance matrix (BFS per source; cached).

        Unreachable pairs get a large sentinel (num_pes), which only
        arises for deliberately disconnected test systems.
        """
        if self._dist is None:
            n = self._num_pes
            rows: list[tuple[int, ...]] = []
            for src in range(n):
                dist = [n] * n
                dist[src] = 0
                frontier = [src]
                d = 0
                while frontier:
                    d += 1
                    nxt: list[int] = []
                    for u in frontier:
                        for w in self._neighbors[u]:
                            if dist[w] > d:
                                dist[w] = d
                                nxt.append(w)
                    frontier = nxt
                rows.append(tuple(dist))
            self._dist = tuple(rows)
        return self._dist

    def comm_time(self, edge_cost: float, pe_from: int, pe_to: int) -> float:
        """Communication time for a message of cost ``edge_cost``.

        Zero when source and destination PE coincide (paper §2); the edge
        cost itself otherwise, optionally scaled by hop distance.
        """
        if pe_from == pe_to:
            return 0.0
        if self.distance_scaled:
            return edge_cost * self.hop_distance[pe_from][pe_to]
        return edge_cost

    # -- dunder --------------------------------------------------------------

    def __repr__(self) -> str:
        kind = "hetero" if not self.is_homogeneous else "homog"
        return (
            f"ProcessorSystem(name={self.name!r}, p={self._num_pes}, "
            f"links={len(self._links)}, {kind})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ProcessorSystem):
            return NotImplemented
        return (
            self._num_pes == other._num_pes
            and self._links == other._links
            and self._speeds == other._speeds
            and self.distance_scaled == other.distance_scaled
        )

    def __hash__(self) -> int:
        return hash((self._num_pes, self._links, self._speeds, self.distance_scaled))
