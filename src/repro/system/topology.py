"""Interconnection topologies as undirected link sets.

Each builder returns a set of undirected ``(i, j)`` pairs with ``i < j``.
The Intel Paragon — the machine the paper's parallel experiments ran on —
is a 2-D mesh; rings, chains, hypercubes, stars and cliques cover the
other standard testbeds.
"""

from __future__ import annotations

from repro.errors import SystemError_

__all__ = [
    "fully_connected_links",
    "ring_links",
    "chain_links",
    "mesh_links",
    "hypercube_links",
    "star_links",
]

Link = tuple[int, int]


def _norm(i: int, j: int) -> Link:
    return (i, j) if i < j else (j, i)


def fully_connected_links(n: int) -> set[Link]:
    """Clique on ``n`` processors."""
    if n < 1:
        raise SystemError_("need at least one processor")
    return {(i, j) for i in range(n) for j in range(i + 1, n)}


def ring_links(n: int) -> set[Link]:
    """Ring (cycle) on ``n`` processors; degenerates to a chain for n ≤ 2."""
    if n < 1:
        raise SystemError_("need at least one processor")
    if n == 1:
        return set()
    if n == 2:
        return {(0, 1)}
    return {_norm(i, (i + 1) % n) for i in range(n)}


def chain_links(n: int) -> set[Link]:
    """Linear array on ``n`` processors."""
    if n < 1:
        raise SystemError_("need at least one processor")
    return {(i, i + 1) for i in range(n - 1)}


def mesh_links(rows: int, cols: int) -> set[Link]:
    """2-D mesh (the Paragon topology) with ``rows × cols`` processors."""
    if rows < 1 or cols < 1:
        raise SystemError_("mesh needs rows >= 1 and cols >= 1")
    links: set[Link] = set()
    for r in range(rows):
        for c in range(cols):
            nid = r * cols + c
            if c + 1 < cols:
                links.add(_norm(nid, nid + 1))
            if r + 1 < rows:
                links.add(_norm(nid, nid + cols))
    return links


def hypercube_links(dim: int) -> set[Link]:
    """Boolean hypercube of dimension ``dim`` (``2**dim`` processors)."""
    if dim < 0:
        raise SystemError_("hypercube needs dim >= 0")
    n = 1 << dim
    links: set[Link] = set()
    for i in range(n):
        for d in range(dim):
            j = i ^ (1 << d)
            if i < j:
                links.add((i, j))
    return links


def star_links(n: int) -> set[Link]:
    """Star: processor 0 is the hub, all others are leaves."""
    if n < 1:
        raise SystemError_("need at least one processor")
    return {(0, i) for i in range(1, n)}
