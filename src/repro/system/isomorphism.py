"""Processor isomorphism (paper Definition 2).

Two processors PE *i* and PE *j* are isomorphic when:

(i)  they have the same neighbour set in the processor graph
     (``neighbors_i = neighbors_j``), and
(ii) both are empty (``RT_i = RT_j = 0``), i.e. no task has been
     scheduled to either yet.

The paper deliberately adopts this *strong* form — the weaker
"equal ready times and no scheduled relatives" condition would require
scanning every node scheduled on both PEs at every expansion — so only
condition (i) needs precomputation; (ii) is a per-state check done by
the search (see :mod:`repro.search.pruning`).

For heterogeneous systems we additionally require equal speeds, since
two empty PEs of different speeds are clearly not interchangeable.

Note the subtlety of condition (i): in a clique, ``neighbors_i`` and
``neighbors_j`` differ by the elements {i, j} themselves; we therefore
compare neighbour sets *excluding* the pair under test, which makes all
PEs of a clique mutually isomorphic and PE pairs of a 3-ring (where each
PE neighbours the other two) likewise — matching the paper's worked
example where all three ring PEs are interchangeable at search start.
"""

from __future__ import annotations

from repro.system.processors import ProcessorSystem

__all__ = ["processors_isomorphic", "isomorphism_classes"]


def processors_isomorphic(system: ProcessorSystem, i: int, j: int) -> bool:
    """Structural part of Definition 2: equal speeds and neighbourhoods.

    The emptiness condition (ii) depends on the partial schedule and is
    checked by the caller.
    """
    if i == j:
        return True
    if system.speed(i) != system.speed(j):
        return False
    ni = set(system.neighbors(i)) - {j}
    nj = set(system.neighbors(j)) - {i}
    return ni == nj


def isomorphism_classes(system: ProcessorSystem) -> tuple[tuple[int, ...], ...]:
    """Partition PEs into structural isomorphism classes.

    Returns a tuple of classes (each a tuple of PE ids in ascending
    order), ordered by their smallest member.  The search uses these
    classes to expand a ready node onto *one representative* of each
    class whose members are all still empty.

    Structural isomorphism as implemented (mutual pairwise equivalence)
    is reflexive and symmetric; we build classes greedily and verify
    mutual equivalence within each class, which is exact for the regular
    topologies shipped in :mod:`repro.system.topology`.
    """
    classes: list[list[int]] = []
    for pe in range(system.num_pes):
        placed = False
        for cls in classes:
            if all(processors_isomorphic(system, pe, member) for member in cls):
                cls.append(pe)
                placed = True
                break
        if not placed:
            classes.append([pe])
    return tuple(tuple(c) for c in classes)
