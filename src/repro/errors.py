"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes exist per subsystem so
that tests (and users) can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed task graphs (cycles, bad weights, unknown nodes)."""


class CycleError(GraphError):
    """Raised when a task graph that must be acyclic contains a cycle."""


class SystemError_(ReproError):
    """Raised for malformed processor systems (bad topology, speeds, links).

    Named with a trailing underscore to avoid shadowing the Python builtin
    :class:`SystemError`.
    """


class ScheduleError(ReproError):
    """Raised when a schedule violates precedence, overlap, or coverage rules."""


class SearchError(ReproError):
    """Raised for invalid search configurations or internal search failures."""


class BudgetExceeded(SearchError):
    """Raised when a search exceeds its state, memory, or time budget.

    Attributes
    ----------
    best_found:
        The best (possibly suboptimal) complete schedule discovered before
        the budget ran out, or ``None`` when no complete schedule was found.
    states_expanded:
        Number of states expanded before the budget ran out.
    """

    def __init__(self, message: str, *, best_found=None, states_expanded: int = 0):
        super().__init__(message)
        self.best_found = best_found
        self.states_expanded = states_expanded


class WorkloadError(ReproError):
    """Raised for invalid workload or experiment specifications."""
