"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``example``
    Run the paper's worked example (Figure 1-4): prints the levels
    table, the search statistics and the optimal Gantt chart.
``table1`` / ``figure6`` / ``figure7``
    Regenerate the corresponding paper artefact on the §4.1 workload.
``ablation`` / ``heuristics``
    The extension experiments (per-rule pruning ablation, heuristic
    deviation from optimal).
``schedule``
    Schedule a task-graph JSON file on a chosen system.
``generate``
    Emit a §4.1 random task graph as JSON.
``solve``
    Serve one instance through the service layer: fingerprint, result
    cache, and the deadline-driven portfolio (or the statically-selected
    single engine).
``batch``
    Serve many instances (a directory, a JSON-lines stream, or the §4.1
    suite) with fingerprint dedupe, caching, and multi-process dispatch.
``serve``
    Run the solver daemon: an asyncio HTTP front-end over the same
    service stack, with a persistent worker pool, bounded admission
    queue, in-flight dedupe, and graceful SIGTERM drain.
``route``
    Run the fleet front-end: consistent-hash routing across N shard
    daemons with health probing, per-shard circuit breakers, failover,
    and drain/rejoin — optionally spawning the shards itself.
``trace``
    Report on a JSONL trace file written via ``--obs-trace``: per-span
    durations, portfolio stage attribution, convergence timelines, and
    daemon event counts (``--check`` validates schema + span nesting).
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]

#: Registered cost-function names (mirrors repro.search.costs.
#: COST_FUNCTIONS; kept literal so the parser builds without importing
#: the package) plus the service-layer "auto" sentinel.
_COST_NAMES = ["paper", "improved", "zero", "load", "combined"]
#: PruningConfig presets for the ``schedule`` command.
_PRUNING_PRESETS = ["all", "extended", "fixed-order", "none"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal DAG scheduling via A* search (ICPP'98 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("example", help="run the paper's worked example")

    for name in ("table1", "figure6", "figure7", "ablation", "heuristics"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--sizes", type=int, nargs="*", default=None,
                       help="graph sizes (default: 10..20 step 2)")
        p.add_argument("--ccrs", type=float, nargs="*", default=None,
                       help="CCR values (default: 0.1 1.0 10.0)")
        p.add_argument("--full", action="store_true",
                       help="the paper's full 10..32 sweep (slow)")
        p.add_argument("--max-expansions", type=int, default=200_000)
        p.add_argument("--max-seconds", type=float, default=60.0)

    p = sub.add_parser("schedule", help="schedule a task-graph JSON/STG file")
    p.add_argument("graph", help="path to a graph file (.json or .stg)")
    p.add_argument("--pes", type=int, default=4, help="number of processors")
    p.add_argument("--topology", default="clique",
                   choices=["clique", "ring", "chain", "star"])
    p.add_argument("--algorithm", default="astar",
                   choices=["astar", "bnb", "idastar", "focal", "wastar",
                            "hda", "list", "chen-yu"])
    p.add_argument("--epsilon", type=float, default=None,
                   help="ε for --algorithm focal/wastar/hda "
                        "(default: 0.2 for focal/wastar, 0 = exact for hda)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for --algorithm hda")
    p.add_argument("--cost", default="paper", choices=_COST_NAMES,
                   help="guiding cost function (default: the paper's §3.1 "
                        "bound; 'combined' adds the load-balance bound)")
    p.add_argument("--pruning", default="all", choices=_PRUNING_PRESETS,
                   help="pruning preset: the paper's §3.2 rules ('all'), "
                        "plus the commutation ('extended') or "
                        "fixed-task-order ('fixed-order') extension, or "
                        "'none'")
    p.add_argument("--max-expansions", type=int, default=500_000)
    p.add_argument("--trace", action="store_true",
                   help="print the search tree (astar only)")

    p = sub.add_parser("generate", help="emit a §4.1 random graph as JSON")
    p.add_argument("--nodes", type=int, default=14)
    p.add_argument("--ccr", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("solve", help="solve one instance via the service layer")
    p.add_argument("graph", help="path to a graph file (.json or .stg)")
    p.add_argument("--pes", type=int, default=4, help="number of processors")
    p.add_argument("--topology", default="clique",
                   choices=["clique", "ring", "chain", "star"])
    p.add_argument("--mode", default="portfolio", choices=["portfolio", "auto"],
                   help="stage ladder or single selected engine")
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds")
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="ε for the weighted-A* improver stage")
    p.add_argument("--cost", default="auto", choices=["auto", *_COST_NAMES],
                   help="guiding cost function ('auto' picks the composite "
                        "'combined' bound wherever capacity can bind)")
    p.add_argument("--max-expansions", type=int, default=500_000)
    p.add_argument("--max-memory-mb", type=float, default=None,
                   help="process-RSS ceiling; the search returns its "
                        "incumbent + lower bound instead of growing past it")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the exact search stage "
                        "(> 1 runs the multiprocess HDA* engine)")
    p.add_argument("--preprocess", action="store_true",
                   help="run the makespan-preserving graph reductions "
                        "(transitive-edge removal, symmetry "
                        "normalization, chain warm-start) before search")
    p.add_argument("--cache", default=None,
                   help="result-cache SQLite file (omit for no persistence)")
    _add_obs_args(p)

    p = sub.add_parser("batch", help="solve many instances via the service layer")
    p.add_argument("input", nargs="?", default=None,
                   help="directory of graph JSON files or a JSON-lines "
                        "request stream (default: the §4.1 suite)")
    p.add_argument("--pes", type=int, default=None,
                   help="PE count for bare graph files (default: v)")
    p.add_argument("--workers", type=int, default=1,
                   help="OS processes for the solve fan-out")
    p.add_argument("--solver-workers", type=int, default=1,
                   help="HDA* worker processes per instance (composes "
                        "with --workers; the two compete for cores, so "
                        "prefer one axis of parallelism)")
    p.add_argument("--mode", default="portfolio", choices=["portfolio", "auto"])
    p.add_argument("--deadline", type=float, default=None,
                   help="per-instance wall-clock budget in seconds")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--cost", default="auto", choices=["auto", *_COST_NAMES])
    p.add_argument("--max-expansions", type=int, default=200_000)
    p.add_argument("--max-memory-mb", type=float, default=None,
                   help="per-solve process-RSS ceiling")
    p.add_argument("--preprocess", action="store_true",
                   help="run the makespan-preserving graph reductions "
                        "before each solve")
    p.add_argument("--cache", default=None,
                   help="result-cache SQLite file (omit for no persistence)")
    p.add_argument("--require-proven", action="store_true",
                   help="treat unproven cache entries as stale")
    p.add_argument("--out", default=None,
                   help="write per-instance results as JSON lines")
    _add_obs_args(p)

    p = sub.add_parser("serve", help="run the solver HTTP daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listen port (0 picks a free one)")
    p.add_argument("--solver-workers", type=int, default=1,
                   help="persistent worker processes solving requests")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max unique jobs pending before 429")
    p.add_argument("--cache", default=None,
                   help="result-cache SQLite file (omit for in-memory)")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-request wall-clock budget in seconds")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--cost", default="auto", choices=["auto", *_COST_NAMES])
    p.add_argument("--max-expansions", type=int, default=200_000)
    p.add_argument("--mode", default="portfolio", choices=["portfolio", "auto"])
    p.add_argument("--require-proven", action="store_true",
                   help="treat unproven cache entries as stale")
    p.add_argument("--max-memory-mb", type=float, default=None,
                   help="per-solve process-RSS ceiling (requests past it "
                        "get an incumbent + lower bound, not an OOM kill)")
    p.add_argument("--preprocess", action="store_true",
                   help="default per-request graph-reduction switch "
                        "(requests may override with 'preprocess')")
    p.add_argument("--shard-id", default=None, metavar="NAME",
                   help="fleet identity: labels /metrics, the deep "
                        "healthz payload, and the readiness line "
                        "(set by 'repro route --spawn')")
    p.add_argument("--cache-capacity", type=int, default=None,
                   help="in-memory result-cache entries kept hot "
                        "(default 512)")
    _add_obs_args(p)

    p = sub.add_parser(
        "route",
        help="run the fleet router over N 'repro serve' shards")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listen port (0 picks a free one)")
    p.add_argument("--shard", action="append", default=[],
                   metavar="HOST:PORT[=NAME]",
                   help="join an already-running shard (repeatable)")
    p.add_argument("--spawn", type=int, default=0, metavar="N",
                   help="spawn N local shard daemons and route over them")
    p.add_argument("--replicas", type=int, default=64,
                   help="virtual nodes per shard on the hash ring")
    p.add_argument("--probe-interval", type=float, default=0.5,
                   help="seconds between background health probes")
    p.add_argument("--shallow-probes", action="store_true",
                   help="probe /healthz instead of /healthz?deep=1")
    p.add_argument("--failure-threshold", type=int, default=3,
                   help="consecutive failures before a shard's "
                        "circuit breaker opens")
    p.add_argument("--reset-timeout", type=float, default=1.0,
                   help="initial breaker open period (doubles per "
                        "re-trip, capped at --max-reset-timeout)")
    p.add_argument("--max-reset-timeout", type=float, default=30.0)
    p.add_argument("--forward-timeout", type=float, default=300.0,
                   help="budget for one forwarded solve request")
    # Passthrough configuration for --spawn shards.
    p.add_argument("--solver-workers", type=int, default=1)
    p.add_argument("--queue-limit", type=int, default=64)
    p.add_argument("--cache", default=None,
                   help="shard result-cache spec; use shared:PATH so "
                        "failover replays hit warm results fleet-wide")
    p.add_argument("--cache-capacity", type=int, default=None)
    p.add_argument("--deadline", type=float, default=None)
    p.add_argument("--max-expansions", type=int, default=200_000)

    p = sub.add_parser("trace", help="report on a JSONL trace file")
    p.add_argument("file", help="trace file written via --obs-trace")
    p.add_argument("--check", action="store_true",
                   help="validate only (schema + span nesting); "
                        "exit 1 on problems")

    p = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant checker (CI gate)")
    p.add_argument("paths", nargs="*", default=["src", "tests"],
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--rules", default=None, metavar="ID[,ID...]",
                   help="comma-separated rule ids to run (default: all; "
                        "see --list-rules)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   dest="fmt", help="report format on stdout")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file; matching findings pass, entries "
                        "matching nothing are reported as stale")
    p.add_argument("--check-baseline", action="store_true",
                   help="exit 1 when the baseline has stale entries "
                        "(keeps the committed baseline minimal)")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="write current findings as a fresh baseline "
                        "and exit 0")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the JSON report to FILE (any --format)")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    return parser


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """The telemetry options shared by solve/batch/serve."""
    p.add_argument("--obs-trace", default=None, metavar="FILE",
                   help="append structured trace events (JSONL) to FILE; "
                        "read it back with 'repro trace FILE'")
    p.add_argument("--probe-every", type=int, default=None, metavar="N",
                   help="sample search convergence every N expansions "
                        "(timelines land in the trace; defaults to 4096 "
                        "when --obs-trace is set)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "example":
        return _cmd_example()
    if args.command in ("table1", "figure6", "figure7", "ablation", "heuristics"):
        return _cmd_experiment(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _obs_from_args(args: argparse.Namespace):
    """``(tracer, probe_every)`` from the shared telemetry options."""
    from repro.obs.probe import DEFAULT_PROBE_INTERVAL
    from repro.obs.trace import Tracer

    tracer = Tracer(args.obs_trace) if args.obs_trace else None
    probe_every = args.probe_every
    if probe_every is None and tracer is not None:
        probe_every = DEFAULT_PROBE_INTERVAL
    return tracer, probe_every


def _cmd_example() -> int:
    from repro.graph.analysis import compute_levels
    from repro.graph.examples import paper_example_dag, paper_example_system
    from repro.schedule.gantt import render_gantt
    from repro.search.astar import astar_schedule
    from repro.search.diagnostics import SearchTrace
    from repro.util.tables import render_table

    graph = paper_example_dag()
    system = paper_example_system()
    levels = compute_levels(graph)
    rows = [
        [graph.label(n), levels.static_level[n], levels.b_level[n], levels.t_level[n]]
        for n in range(graph.num_nodes)
    ]
    print(render_table(["node", "sl", "b-level", "t-level"], rows,
                       title="Figure 2 — levels", float_fmt="{:g}"))
    trace = SearchTrace()
    result = astar_schedule(graph, system, trace=trace)
    print(f"\nsearch: {result.stats.states_generated} states generated, "
          f"{result.stats.states_expanded} expanded")
    print("\nSearch tree (Figure 3):")
    print(trace.render())
    print("\nOptimal schedule (Figure 4):")
    print(render_gantt(result.schedule))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import run_ablation
    from repro.experiments.figure6 import run_figure6
    from repro.experiments.figure7 import run_figure7
    from repro.experiments.heuristics import run_heuristic_comparison
    from repro.experiments.runner import ExperimentConfig
    from repro.experiments.table1 import run_table1
    from repro.workloads.suite import DEFAULT_SIZES, PAPER_CCRS, paper_suite

    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    ccrs = tuple(args.ccrs) if args.ccrs else PAPER_CCRS
    suite = paper_suite(ccrs=ccrs, sizes=sizes, full=args.full)
    config = ExperimentConfig(
        max_expansions=args.max_expansions, max_seconds=args.max_seconds
    )
    if args.command == "table1":
        res = run_table1(suite, config)
        print(res.render())
        print()
        print(res.render_work())
    elif args.command == "figure6":
        print(run_figure6(suite, config).render())
    elif args.command == "figure7":
        print(run_figure7(suite, config).render())
    elif args.command == "ablation":
        print(run_ablation(suite, config).render())
    else:
        print(run_heuristic_comparison(suite, config).render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.graph.io import load_graph_json
    from repro.graph.stg import load_stg
    from repro.heuristics.listsched import list_schedule
    from repro.schedule.gantt import render_gantt, render_timeline
    from repro.search.astar import astar_schedule
    from repro.search.bnb import bnb_schedule
    from repro.search.diagnostics import SearchTrace
    from repro.search.focal import focal_schedule
    from repro.search.idastar import idastar_schedule
    from repro.search.pruning import PruningConfig
    from repro.search.weighted import weighted_astar_schedule
    from repro.system.processors import ProcessorSystem
    from repro.util.timing import Budget

    if args.graph.endswith(".stg"):
        graph = load_stg(args.graph)
    else:
        graph = load_graph_json(args.graph)
    factory = {
        "clique": ProcessorSystem.fully_connected,
        "ring": ProcessorSystem.ring,
        "chain": ProcessorSystem.chain,
        "star": ProcessorSystem.star,
    }[args.topology]
    system = factory(args.pes)
    budget = Budget(max_expanded=args.max_expansions)
    if args.algorithm in ("list", "chen-yu") and (
        args.cost != "paper" or args.pruning != "all"
    ):
        # list is a heuristic and chen-yu carries its own bound (the
        # path-matching underestimate IS the baseline) and none of the
        # §3.2 rules: silently ignoring the flags would corrupt any
        # cross-algorithm comparison the user is running.
        print(f"error: --cost/--pruning do not apply to "
              f"--algorithm {args.algorithm}", file=sys.stderr)
        return 2
    if args.algorithm == "list":
        sched = list_schedule(graph, system)
        print(render_timeline(sched))
        print(render_gantt(sched))
        return 0
    epsilon = args.epsilon
    if epsilon is None:
        epsilon = 0.0 if args.algorithm == "hda" else 0.2
    pruning = {
        "all": PruningConfig.all,
        "extended": PruningConfig.extended,
        "fixed-order": PruningConfig.with_fixed_order,
        "none": PruningConfig.none,
    }[args.pruning]()
    cost = args.cost
    trace = SearchTrace() if args.trace and args.algorithm == "astar" else None
    if args.algorithm == "astar":
        result = astar_schedule(graph, system, budget=budget, trace=trace,
                                cost=cost, pruning=pruning)
    elif args.algorithm == "bnb":
        result = bnb_schedule(graph, system, budget=budget, cost=cost,
                              pruning=pruning)
    elif args.algorithm == "idastar":
        result = idastar_schedule(graph, system, budget=budget, cost=cost,
                                  pruning=pruning)
    elif args.algorithm == "wastar":
        result = weighted_astar_schedule(graph, system, epsilon,
                                         budget=budget, cost=cost,
                                         pruning=pruning)
    elif args.algorithm == "hda":
        from repro.parallel.hda import hda_astar_schedule

        result = hda_astar_schedule(
            graph, system, workers=args.workers, epsilon=epsilon,
            budget=budget, cost=cost, pruning=pruning,
        )
    elif args.algorithm == "chen-yu":
        from repro.baselines.chen_yu import chen_yu_schedule

        result = chen_yu_schedule(graph, system, budget=budget)
    else:
        result = focal_schedule(graph, system, epsilon, budget=budget,
                                cost=cost, pruning=pruning)
    if trace is not None:
        print(trace.render())
    print(f"algorithm: {result.algorithm}   optimal: {result.optimal}   "
          f"length: {result.length:g}")
    print(f"states: {result.stats.states_generated} generated / "
          f"{result.stats.states_expanded} expanded in "
          f"{result.stats.wall_seconds:.3f}s")
    if result.schedule is not None:
        print(render_gantt(result.schedule))
    return 0


def _load_graph_arg(path: str):
    from repro.graph.io import load_graph_json
    from repro.graph.stg import load_stg

    return load_stg(path) if path.endswith(".stg") else load_graph_json(path)


class _interruptible:
    """Route SIGTERM through KeyboardInterrupt for the duration of a
    ``with`` block, so ``kill <pid>`` and Ctrl-C take the same clean
    partial-results path in ``solve``/``batch`` (the run_batch contract)
    instead of dying mid-write with no report."""

    def __enter__(self) -> "_interruptible":
        import signal

        def _to_interrupt(signum, frame):
            raise KeyboardInterrupt

        try:
            self._prev = signal.signal(signal.SIGTERM, _to_interrupt)
        except ValueError:  # non-main thread (embedded use)
            self._prev = None
        return self

    def __exit__(self, *exc: object) -> None:
        import signal

        if self._prev is not None:
            signal.signal(signal.SIGTERM, self._prev)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.schedule.gantt import render_gantt
    from repro.service.batch import BatchItem, run_batch
    from repro.service.cache import ResultCache
    from repro.system.processors import ProcessorSystem

    graph = _load_graph_arg(args.graph)
    factory = {
        "clique": ProcessorSystem.fully_connected,
        "ring": ProcessorSystem.ring,
        "chain": ProcessorSystem.chain,
        "star": ProcessorSystem.star,
    }[args.topology]
    system = factory(args.pes)
    cache = ResultCache(args.cache) if args.cache else None
    tracer, probe_every = _obs_from_args(args)
    try:
        with _interruptible():
            report = run_batch(
                [BatchItem(name=graph.name, graph=graph, system=system)],
                cache=cache,
                solver_workers=args.workers,
                deadline=args.deadline,
                epsilon=args.epsilon,
                cost=args.cost,
                max_expansions=args.max_expansions,
                max_memory_mb=args.max_memory_mb,
                mode=args.mode,
                tracer=tracer,
                probe_every=probe_every,
                preprocess=args.preprocess,
            )
    except KeyboardInterrupt:
        print("repro solve: interrupted before a result was available",
              file=sys.stderr)
        return 130
    finally:
        if cache is not None:
            cache.close()
        if tracer is not None:
            tracer.close()
    if report.interrupted and not report.outcomes:
        print("repro solve: interrupted before a result was available",
              file=sys.stderr)
        return 130
    out = report.outcomes[0]
    via = "cache" if out.cached else (out.winner or out.algorithm)
    print(f"fingerprint: {out.fingerprint}")
    print(f"algorithm: {out.algorithm}   certificate: {out.certificate}   "
          f"length: {out.makespan:g}   via: {via}")
    print(f"solved in {out.seconds:.3f}s "
          f"({report.wall_seconds:.3f}s end-to-end)")
    print(render_gantt(out.schedule))
    if args.obs_trace:
        print(f"trace written to {args.obs_trace} "
              f"(read it with: repro trace {args.obs_trace})")
    return 130 if report.interrupted else 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.batch import items_from_suite, load_items, run_batch
    from repro.service.cache import ResultCache

    if args.input is None:
        items = items_from_suite()
    else:
        items = load_items(args.input, pes=args.pes)
    cache = ResultCache(args.cache) if args.cache else None
    tracer, probe_every = _obs_from_args(args)
    try:
        with _interruptible():
            report = run_batch(
                items,
                cache=cache,
                workers=args.workers,
                solver_workers=args.solver_workers,
                deadline=args.deadline,
                epsilon=args.epsilon,
                cost=args.cost,
                max_expansions=args.max_expansions,
                max_memory_mb=args.max_memory_mb,
                mode=args.mode,
                require_proven=args.require_proven,
                tracer=tracer,
                probe_every=probe_every,
                preprocess=args.preprocess,
            )
    except KeyboardInterrupt:
        print("repro batch: interrupted before any result was available",
              file=sys.stderr)
        return 130
    finally:
        if cache is not None:
            cache.close()
        if tracer is not None:
            tracer.close()
    print(report.render())
    if args.out:
        with open(args.out, "w") as fh:
            for outcome in report.outcomes:
                fh.write(_json.dumps(outcome.as_dict()) + "\n")
        print(f"wrote {len(report.outcomes)} results to {args.out}")
    if report.interrupted:
        print("repro batch: interrupted — partial results above",
              file=sys.stderr)
        return 130
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.service.server import SolverServer

    server = SolverServer(
        args.host,
        args.port,
        solver_workers=args.solver_workers,
        queue_limit=args.queue_limit,
        cache=args.cache,
        deadline=args.deadline,
        epsilon=args.epsilon,
        cost=args.cost,
        max_expansions=args.max_expansions,
        mode=args.mode,
        require_proven=args.require_proven,
        max_memory_mb=args.max_memory_mb,
        preprocess=args.preprocess,
        obs_trace=args.obs_trace,
        probe_every=args.probe_every,
        shard_id=args.shard_id,
        cache_capacity=args.cache_capacity,
    )
    # Readiness (with the bound port — --port 0 picks a free one) is
    # announced from the event loop, after the listener exists, so a
    # supervisor can wait for this line before routing traffic.  The
    # optional "shard=NAME" token is what 'repro route --spawn' and
    # the fleet harness scrape to learn the advertised address.
    shard_token = f" shard={args.shard_id}" if args.shard_id else ""
    ready_thread = threading.Thread(
        target=lambda: (
            server.ready.wait(),
            print(f"repro serve: listening on http://{server.host}:{server.port}"
                  f"{shard_token} "
                  f"(workers={args.solver_workers}, queue={args.queue_limit})",
                  flush=True),
        ),
        daemon=True,
    )
    ready_thread.start()
    report = server.run()
    jobs = report["jobs"]
    print(f"repro serve: drained — {jobs['accepted']} accepted, "
          f"{jobs['completed']} completed, {jobs['failed']} failed, "
          f"{jobs['solved']} solved, {jobs['cache_hits']} cache hits, "
          f"{jobs['dedup_fanout']} deduped, {jobs['rejected']} rejected",
          flush=True)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import threading

    from repro.service.fleet import spawn_fleet
    from repro.service.router import Shard, ShardRouter

    if not args.shard and args.spawn <= 0:
        print("repro route: need --shard and/or --spawn", file=sys.stderr)
        return 2
    spawned = []
    if args.spawn > 0:
        print(f"repro route: spawning {args.spawn} shard(s)...", flush=True)
        spawned = spawn_fleet(
            args.spawn,
            solver_workers=args.solver_workers,
            queue_limit=args.queue_limit,
            cache=args.cache,
            cache_capacity=args.cache_capacity,
            deadline=args.deadline,
            max_expansions=args.max_expansions,
        )
        for shard in spawned:
            print(f"repro route: shard {shard.name} on http://{shard.address}",
                  flush=True)
    try:
        shards: list[Shard | str] = [
            Shard(s.name, s.host, s.port) for s in spawned
        ]
        shards += list(args.shard)
        router = ShardRouter(
            shards,
            args.host,
            args.port,
            replicas=args.replicas,
            probe_interval=args.probe_interval,
            deep_probes=not args.shallow_probes,
            forward_timeout=args.forward_timeout,
            failure_threshold=args.failure_threshold,
            reset_timeout=args.reset_timeout,
            max_reset_timeout=args.max_reset_timeout,
        )
        ready_thread = threading.Thread(
            target=lambda: (
                router.ready.wait(),
                print(f"repro route: listening on "
                      f"http://{router.host}:{router.port} "
                      f"(shards={len(router.shards)})",
                      flush=True),
            ),
            daemon=True,
        )
        ready_thread.start()
        report = router.run()
        routing = report["routing"]
        print(f"repro route: drained — {routing['requests']} requests, "
              f"{routing['routed']} routed, {routing['failovers']} failovers, "
              f"{routing['no_shard']} unroutable", flush=True)
    finally:
        for shard in spawned:
            shard.terminate()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.report import check_trace, load_trace, render_report

    try:
        lines = Path(args.file).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        print(f"repro trace: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    if args.check:
        return check_trace(lines, sys.stdout)
    try:
        records = load_trace(lines)
    except ValueError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 1
    try:
        render_report(records, sys.stdout)
    except BrokenPipeError:
        # Truncated by a pager (`repro trace f | head`): not an error.
        sys.stderr.close()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
    from repro.graph.io import graph_to_dict

    spec = PaperGraphSpec(num_nodes=args.nodes, ccr=args.ccr, seed=args.seed)
    print(json.dumps(graph_to_dict(paper_random_graph(spec)), indent=2))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        available_rules,
        lint_paths,
        write_baseline,
    )

    if args.list_rules:
        for rule_id, severity, description in available_rules():
            print(f"{rule_id:<22} {severity:<8} {description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        report = lint_paths(
            args.paths,
            rules=rules,
            baseline=args.baseline,
            root=Path.cwd(),
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.write_baseline}")
        return 0

    if args.out:
        Path(args.out).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
    if args.fmt == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())

    if report.findings:
        return 1
    if args.check_baseline and report.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
