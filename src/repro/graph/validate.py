"""Task-graph validation helpers.

Construction of :class:`~repro.graph.taskgraph.TaskGraph` already rejects
cycles and malformed weights; these helpers exist for validating *raw*
inputs (edge lists, parsed files) before construction and for asserting
structural properties in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import CycleError, GraphError
from repro.graph.taskgraph import TaskGraph

__all__ = ["check_acyclic", "validate_graph", "is_connected_dag"]


def check_acyclic(num_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
    """Raise :class:`CycleError` when the edge set has a directed cycle.

    Iterative DFS three-colouring; safe for deep graphs (no recursion).
    """
    adj: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        adj[u].append(v)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = [WHITE] * num_nodes
    for root in range(num_nodes):
        if colour[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        colour[root] = GRAY
        while stack:
            node, idx = stack[-1]
            if idx < len(adj[node]):
                stack[-1] = (node, idx + 1)
                child = adj[node][idx]
                if colour[child] == GRAY:
                    raise CycleError(f"cycle detected through node {child}")
                if colour[child] == WHITE:
                    colour[child] = GRAY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()


def validate_graph(
    weights: Iterable[float],
    edges: Mapping[tuple[int, int], float],
) -> None:
    """Validate raw weights/edges; raises :class:`GraphError` on problems.

    Checks everything the :class:`TaskGraph` constructor checks, plus it
    reports *all* weight problems at once (useful for file parsing).
    """
    weights = list(weights)
    problems: list[str] = []
    if not weights:
        problems.append("graph has no nodes")
    for i, w in enumerate(weights):
        if not (w > 0):
            problems.append(f"node {i} has non-positive weight {w!r}")
    v = len(weights)
    for (a, b), c in edges.items():
        if not (0 <= a < v) or not (0 <= b < v):
            problems.append(f"edge ({a}, {b}) references unknown node")
        elif a == b:
            problems.append(f"self-loop on node {a}")
        if c < 0:
            problems.append(f"edge ({a}, {b}) has negative cost {c!r}")
    if problems:
        raise GraphError("; ".join(problems))
    check_acyclic(v, edges.keys())


def is_connected_dag(graph: TaskGraph) -> bool:
    """True when the underlying undirected graph is connected.

    The paper's random graphs are built from a single root so they are
    always connected; generators assert this property.
    """
    v = graph.num_nodes
    if v == 1:
        return True
    seen = [False] * v
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        n = stack.pop()
        for m in graph.succs(n) + graph.preds(n):
            if not seen[m]:
                seen[m] = True
                count += 1
                stack.append(m)
    return count == v
