"""Task-graph substrate: weighted DAGs, analysis, generators and I/O.

A parallel program is modelled as a node- and edge-weighted directed
acyclic graph (DAG): node weights are computation costs, edge weights are
communication costs (paper §2).  This package provides the data
structure (:class:`~repro.graph.taskgraph.TaskGraph`), the classic graph
attributes used for search guidance (t-level, b-level, static level,
critical path), random and structured generators, and serialization.
"""

from repro.graph.analysis import GraphLevels, compute_levels, critical_path, graph_ccr
from repro.graph.examples import paper_example_dag, paper_example_system
from repro.graph.taskgraph import TaskGraph
from repro.graph.validate import check_acyclic, validate_graph

__all__ = [
    "TaskGraph",
    "GraphLevels",
    "compute_levels",
    "critical_path",
    "graph_ccr",
    "paper_example_dag",
    "paper_example_system",
    "check_acyclic",
    "validate_graph",
]
