"""Task-graph serialization: JSON, DOT (Graphviz), and plain edge lists.

The JSON schema is the library's interchange format (round-trips
losslessly); DOT export exists for visual inspection; the edge-list
format matches the minimal conventions of STG-style benchmark files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import GraphError
from repro.graph.taskgraph import TaskGraph
from repro.graph.validate import validate_graph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph_json",
    "load_graph_json",
    "graph_to_dot",
    "parse_edge_list",
    "format_edge_list",
]

_SCHEMA_VERSION = 1


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Serialize a graph to a JSON-safe dict (schema v1)."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": graph.name,
        "weights": list(graph.weights),
        "labels": list(graph.labels),
        "edges": [[u, v, c] for (u, v), c in sorted(graph.edges.items())],
    }


def graph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Deserialize a graph from :func:`graph_to_dict` output.

    Raises
    ------
    GraphError
        On schema mismatch or structural problems.
    """
    if data.get("schema") != _SCHEMA_VERSION:
        raise GraphError(f"unsupported schema {data.get('schema')!r}")
    try:
        weights = data["weights"]
        edge_rows = data["edges"]
    except KeyError as exc:
        raise GraphError(f"missing field {exc}") from None
    edges = {(int(u), int(v)): float(c) for u, v, c in edge_rows}
    validate_graph(weights, edges)
    return TaskGraph(
        weights,
        edges,
        labels=data.get("labels"),
        name=data.get("name", "taskgraph"),
    )


def save_graph_json(graph: TaskGraph, path: str | Path) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph_json(path: str | Path) -> TaskGraph:
    """Read a graph from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def graph_to_dot(graph: TaskGraph) -> str:
    """Render a graph in Graphviz DOT syntax.

    Node labels show ``name (weight)``; edge labels show the
    communication cost.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for n in range(graph.num_nodes):
        lines.append(
            f'  {n} [label="{graph.label(n)}\\n({graph.weight(n):g})"];'
        )
    for (u, v), c in sorted(graph.edges.items()):
        lines.append(f'  {u} -> {v} [label="{c:g}"];')
    lines.append("}")
    return "\n".join(lines)


def parse_edge_list(text: str, name: str = "taskgraph") -> TaskGraph:
    """Parse the minimal edge-list format::

        # comment
        node <id> <weight>
        edge <src> <dst> <cost>

    Node ids must be dense 0..v-1 (any declaration order).

    Raises
    ------
    GraphError
        On syntax or structural problems.
    """
    node_weights: dict[int, float] = {}
    edges: dict[tuple[int, int], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            if parts[0] == "node" and len(parts) == 3:
                node_weights[int(parts[1])] = float(parts[2])
            elif parts[0] == "edge" and len(parts) == 4:
                edges[(int(parts[1]), int(parts[2]))] = float(parts[3])
            else:
                raise ValueError
        except ValueError:
            raise GraphError(f"line {lineno}: cannot parse {raw!r}") from None
    if not node_weights:
        raise GraphError("no node declarations found")
    v = len(node_weights)
    if sorted(node_weights) != list(range(v)):
        raise GraphError("node ids must be dense 0..v-1")
    weights = [node_weights[i] for i in range(v)]
    validate_graph(weights, edges)
    return TaskGraph(weights, edges, name=name)


def format_edge_list(graph: TaskGraph) -> str:
    """Inverse of :func:`parse_edge_list`."""
    lines = [f"# {graph.name}: v={graph.num_nodes} e={graph.num_edges}"]
    for n in range(graph.num_nodes):
        lines.append(f"node {n} {graph.weight(n):g}")
    for (u, v), c in sorted(graph.edges.items()):
        lines.append(f"edge {u} {v} {c:g}")
    return "\n".join(lines) + "\n"
