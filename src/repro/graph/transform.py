"""Task-graph transformations.

Controlled ways to derive new instances from existing ones — used by the
workload builders (hitting an exact sample CCR), by tests (mirror
symmetry invariants), and generally useful for experiment design.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.analysis import graph_ccr
from repro.graph.taskgraph import TaskGraph

__all__ = ["reverse_graph", "scale_to_ccr", "scale_costs", "merge_serial_chains"]


def reverse_graph(graph: TaskGraph) -> TaskGraph:
    """Mirror a DAG: reverse every edge, relabel so ids stay topological.

    Node *i* of the result corresponds to node ``v-1-i`` of the input.
    Levels swap roles (the mirror's b-level is the original's t-level
    plus the node weight, and vice versa) and the optimal schedule
    length on any *fully-connected homogeneous* system is preserved —
    both properties are exercised by the test suite.
    """
    v = graph.num_nodes
    weights = list(reversed(graph.weights))
    edges = {
        (v - 1 - dst, v - 1 - src): c for (src, dst), c in graph.edges.items()
    }
    labels = tuple(reversed(graph.labels))
    return TaskGraph(weights, edges, labels, name=f"{graph.name}-reversed")


def scale_costs(
    graph: TaskGraph, *, comp_factor: float = 1.0, comm_factor: float = 1.0
) -> TaskGraph:
    """Multiply all node weights and/or edge costs by constants.

    Raises
    ------
    GraphError
        When a factor is non-positive for computation (node weights must
        stay positive) or negative for communication.
    """
    if comp_factor <= 0:
        raise GraphError("comp_factor must be positive")
    if comm_factor < 0:
        raise GraphError("comm_factor must be non-negative")
    weights = [w * comp_factor for w in graph.weights]
    edges = {e: c * comm_factor for e, c in graph.edges.items()}
    return TaskGraph(weights, edges, graph.labels, name=f"{graph.name}-scaled")


def scale_to_ccr(graph: TaskGraph, target_ccr: float) -> TaskGraph:
    """Rescale edge costs so the *sample* CCR equals ``target_ccr``.

    The §4.1 generator's CCR parameter is a distribution mean, so each
    sample's achieved CCR fluctuates; this transform pins it exactly
    (useful when an experiment sweeps CCR as a controlled variable).

    Raises
    ------
    GraphError
        For non-positive targets or edge-less graphs.
    """
    if target_ccr <= 0:
        raise GraphError("target CCR must be positive")
    current = graph_ccr(graph)
    if current == 0:
        raise GraphError("cannot rescale a graph with zero communication")
    return scale_costs(graph, comm_factor=target_ccr / current)


def merge_serial_chains(graph: TaskGraph) -> TaskGraph:
    """Collapse linear chains: merge node pairs (u, w) where w is u's only
    child and u is w's only parent.

    The classic *linear clustering* preprocessing reduction.  It shrinks
    the search space dramatically, and any schedule of the merged graph
    expands to a feasible schedule of the original (run the chain
    contiguously where the merged node runs), so

        ``optimal(original) ≤ optimal(merged)``

    — merging yields a valid **upper-bounding** instance.  It is *not*
    exact in general: forcing a chain contiguous can conflict with other
    tasks competing for the same processor slot, so the merged optimum
    may exceed the original one (the test suite pins such a case).  Use
    it to seed upper bounds or to pre-shrink instances where the
    approximation is acceptable.  Weights add along chains; edges
    between chains keep their costliest representative.
    """
    parent = list(range(graph.num_nodes))  # union-find into chain heads

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u in range(graph.num_nodes):
        succs = graph.succs(u)
        if len(succs) == 1 and len(graph.preds(succs[0])) == 1:
            parent[find(succs[0])] = find(u)

    heads = sorted({find(n) for n in range(graph.num_nodes)})
    new_id = {h: i for i, h in enumerate(heads)}
    weights = [0.0] * len(heads)
    labels: dict[int, list[str]] = {i: [] for i in range(len(heads))}
    for n in range(graph.num_nodes):
        h = new_id[find(n)]
        weights[h] += graph.weight(n)
        labels[h].append(graph.label(n))
    edges: dict[tuple[int, int], float] = {}
    for (u, w), c in graph.edges.items():
        hu, hw = new_id[find(u)], new_id[find(w)]
        if hu != hw:
            # Between two chains, keep the costliest connecting edge.
            edges[(hu, hw)] = max(edges.get((hu, hw), 0.0), c)
    merged_labels = ["+".join(labels[i]) for i in range(len(heads))]
    return TaskGraph(
        weights, edges, merged_labels, name=f"{graph.name}-merged"
    )
