"""The paper's random task-graph generator (§4.1), seeded and reproducible.

The recipe, quoted from the paper:

    "First the computation cost of each node in the graph was randomly
    selected from a uniform distribution with mean equal to 40.
    Beginning from the first node, a random number indicating the number
    of children was chosen from a uniform distribution with mean equal
    to v/10.  Thus, the connectivity of the graph increases with the
    size of the graph.  The communication cost of an edge was also
    randomly selected from a uniform distribution with mean equal to 40
    times the specified value of CCR."

Unstated details we fix (documented so the workload is reproducible):

* "uniform with mean m" is the integer range ``U[1, 2m-1]`` (positive,
  symmetric about m).
* Children of node *i* are drawn without replacement from the nodes that
  come after *i* in the generation order, which guarantees acyclicity.
* Any non-first node left parentless after the pass receives one edge
  from a uniformly-chosen earlier node, making the DAG connected and
  single-entry — without this, small samples occasionally decompose into
  independent components, which the paper's examples never show.
* Edge communication costs are drawn per edge; the *achieved* CCR of a
  sample therefore fluctuates around the requested value (the paper's
  CCR labels its distribution parameter, not the sample statistic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.taskgraph import TaskGraph
from repro.util.rng import RngStream

__all__ = ["PaperGraphSpec", "paper_random_graph"]


@dataclass(frozen=True)
class PaperGraphSpec:
    """Parameters of the §4.1 generator.

    Attributes
    ----------
    num_nodes:
        Graph size v (the paper sweeps 10..32 in steps of 2).
    ccr:
        Communication-to-computation ratio parameter (0.1, 1.0, 10.0 in
        the paper).
    mean_comp:
        Mean computation cost (paper: 40).
    seed:
        Seed for this particular graph instance.
    """

    num_nodes: int
    ccr: float
    mean_comp: float = 40.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise WorkloadError("paper generator needs at least 2 nodes")
        if self.ccr <= 0:
            raise WorkloadError("CCR must be positive")
        if self.mean_comp <= 0:
            raise WorkloadError("mean computation cost must be positive")

    @property
    def mean_out_degree(self) -> float:
        """Mean number of children per node: v/10 (paper)."""
        return self.num_nodes / 10.0

    @property
    def mean_comm(self) -> float:
        """Mean communication cost: mean_comp × CCR (paper)."""
        return self.mean_comp * self.ccr


def paper_random_graph(spec: PaperGraphSpec) -> TaskGraph:
    """Generate one random task graph per the §4.1 recipe.

    Deterministic in ``spec`` (including its seed).
    """
    rng = RngStream(spec.seed, name=f"paper-graph-v{spec.num_nodes}-ccr{spec.ccr}")
    v = spec.num_nodes

    weights = [rng.uniform_int_mean(spec.mean_comp) for _ in range(v)]

    edges: dict[tuple[int, int], float] = {}
    has_parent = [False] * v
    # Mean out-degree v/10; integer uniform with that mean, at least 0.
    # For small v the integer mean-v/10 distribution degenerates to {0,1};
    # we draw from U[0, round(2*v/10)] which has the right mean.
    max_children = max(1, int(round(2 * spec.mean_out_degree)))
    for i in range(v - 1):
        remaining = v - 1 - i
        k = rng.randint(0, max_children)
        k = min(k, remaining)
        if k == 0:
            continue
        children = rng.choice(range(i + 1, v), size=k, replace=False)
        for child in sorted(int(c) for c in children):
            edges[(i, child)] = float(rng.uniform_int_mean(spec.mean_comm))
            has_parent[child] = True

    # Connect any orphan (non-root) node to a random earlier node so the
    # DAG is connected and has a single entry node.
    for node in range(1, v):
        if not has_parent[node]:
            parent = rng.randint(0, node - 1)
            edges[(parent, node)] = float(rng.uniform_int_mean(spec.mean_comm))
            has_parent[node] = True

    return TaskGraph(
        weights,
        edges,
        name=f"paper-v{v}-ccr{spec.ccr}-seed{spec.seed}",
    )
