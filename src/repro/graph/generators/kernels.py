"""Task graphs of numerical kernels.

These mirror the application-shaped benchmark families used throughout
the DAG-scheduling literature (including the authors' own later work):
Gaussian elimination, LU decomposition, FFT butterflies, Laplace/stencil
sweeps, and divide-and-conquer.  Costs follow the conventional
operation-count models with a tunable communication scale so any CCR can
be dialled in.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "gaussian_elimination_graph",
    "lu_decomposition_graph",
    "fft_graph",
    "laplace_graph",
    "divide_and_conquer_graph",
]


def gaussian_elimination_graph(
    matrix_size: int, *, comp: float = 40.0, comm_scale: float = 1.0
) -> TaskGraph:
    """Gaussian-elimination task graph for an ``m × m`` matrix.

    Per elimination step *k* there is one pivot task ``P_k`` followed by
    ``m - k - 1`` independent update tasks ``U_{k,j}``; updates feed the
    next step's pivot and the corresponding update column.  Total nodes:
    ``sum_{k=0}^{m-2} (1 + (m-k-1)) = (m-1)(m+2)/2``.

    Update tasks shrink with *k* (they touch fewer rows), modelled as
    cost ∝ remaining columns.
    """
    m = matrix_size
    if m < 2:
        raise WorkloadError("gaussian elimination needs matrix_size >= 2")
    weights: list[float] = []
    labels: list[str] = []
    edges: dict[tuple[int, int], float] = {}
    pivot_id: dict[int, int] = {}
    update_id: dict[tuple[int, int], int] = {}

    for k in range(m - 1):
        remaining = m - k
        pid = len(weights)
        pivot_id[k] = pid
        weights.append(comp * remaining / m)
        labels.append(f"P{k}")
        for j in range(k + 1, m):
            uid = len(weights)
            update_id[(k, j)] = uid
            weights.append(comp * remaining / m)
            labels.append(f"U{k},{j}")
            edges[(pid, uid)] = comp * comm_scale * remaining / m

    for k in range(m - 2):
        nxt_pid = pivot_id[k + 1]
        # Column k+1's update feeds the next pivot.
        edges[(update_id[(k, k + 1)], nxt_pid)] = comp * comm_scale * (m - k - 1) / m
        # Column j's update feeds the next step's update of the same column.
        for j in range(k + 2, m):
            edges[(update_id[(k, j)], update_id[(k + 1, j)])] = (
                comp * comm_scale * (m - k - 1) / m
            )
    return TaskGraph(weights, edges, labels, name=f"gauss-{m}")


def lu_decomposition_graph(
    matrix_size: int, *, comp: float = 40.0, comm_scale: float = 1.0
) -> TaskGraph:
    """LU-decomposition (Doolittle, no pivoting) task graph.

    Step *k* computes the diagonal task ``D_k``, then column tasks
    ``L_{i,k}`` (i > k) and row tasks ``R_{k,j}`` (j > k), then interior
    updates ``A_{i,j}`` (i, j > k) that feed step k+1.  This is the
    denser cousin of the Gaussian-elimination graph.
    """
    m = matrix_size
    if m < 2:
        raise WorkloadError("LU needs matrix_size >= 2")
    weights: list[float] = []
    labels: list[str] = []
    edges: dict[tuple[int, int], float] = {}

    def add(label: str, cost: float) -> int:
        weights.append(cost)
        labels.append(label)
        return len(weights) - 1

    comm = comp * comm_scale
    interior_prev: dict[tuple[int, int], int] = {}
    for k in range(m - 1):
        scale = (m - k) / m
        d = add(f"D{k}", comp * scale)
        if (k, k) in interior_prev:
            edges[(interior_prev[(k, k)], d)] = comm * scale
        col_ids: dict[int, int] = {}
        row_ids: dict[int, int] = {}
        for i in range(k + 1, m):
            c = add(f"L{i},{k}", comp * scale)
            edges[(d, c)] = comm * scale
            if (i, k) in interior_prev:
                edges[(interior_prev[(i, k)], c)] = comm * scale
            col_ids[i] = c
        for j in range(k + 1, m):
            r = add(f"R{k},{j}", comp * scale)
            edges[(d, r)] = comm * scale
            if (k, j) in interior_prev:
                edges[(interior_prev[(k, j)], r)] = comm * scale
            row_ids[j] = r
        interior: dict[tuple[int, int], int] = {}
        for i in range(k + 1, m):
            for j in range(k + 1, m):
                a = add(f"A{i},{j}^{k}", comp * scale)
                edges[(col_ids[i], a)] = comm * scale
                edges[(row_ids[j], a)] = comm * scale
                interior[(i, j)] = a
        interior_prev = interior
    return TaskGraph(weights, edges, labels, name=f"lu-{m}")


def fft_graph(points_log2: int, *, comp: float = 40.0, comm_scale: float = 1.0) -> TaskGraph:
    """FFT butterfly task graph on ``2**points_log2`` points.

    ``points_log2`` stages of ``2**points_log2`` butterfly tasks each;
    stage *s* task *i* depends on stage *s-1* tasks *i* and
    ``i XOR 2**s-ish`` partner (standard radix-2 butterfly wiring).
    """
    if points_log2 < 1:
        raise WorkloadError("fft needs points_log2 >= 1")
    n = 1 << points_log2
    stages = points_log2
    weights: list[float] = []
    labels: list[str] = []
    edges: dict[tuple[int, int], float] = {}

    def nid(stage: int, i: int) -> int:
        return stage * n + i

    comm = comp * comm_scale
    for stage in range(stages + 1):
        for i in range(n):
            weights.append(comp)
            labels.append(f"S{stage}[{i}]")
            if stage > 0:
                partner = i ^ (1 << (stage - 1))
                edges[(nid(stage - 1, i), nid(stage, i))] = comm
                edges[(nid(stage - 1, partner), nid(stage, i))] = comm
    return TaskGraph(weights, edges, labels, name=f"fft-{n}")


def laplace_graph(grid: int, *, comp: float = 40.0, comm_scale: float = 1.0) -> TaskGraph:
    """Laplace-solver wavefront DAG over a ``grid × grid`` domain.

    Point ``(i, j)`` depends on ``(i-1, j)`` and ``(i, j-1)`` — the
    classic 2-D wavefront (Gauss-Seidel sweep order).
    """
    if grid < 1:
        raise WorkloadError("laplace needs grid >= 1")
    weights = [comp] * (grid * grid)
    labels = [f"({i},{j})" for i in range(grid) for j in range(grid)]
    comm = comp * comm_scale
    edges: dict[tuple[int, int], float] = {}
    for i in range(grid):
        for j in range(grid):
            nid = i * grid + j
            if i + 1 < grid:
                edges[(nid, (i + 1) * grid + j)] = comm
            if j + 1 < grid:
                edges[(nid, i * grid + j + 1)] = comm
    return TaskGraph(weights, edges, labels, name=f"laplace-{grid}")


def divide_and_conquer_graph(
    depth: int, *, comp: float = 40.0, comm_scale: float = 1.0
) -> TaskGraph:
    """Divide-and-conquer: binary out-tree glued to its mirror in-tree.

    Models recursive algorithms (mergesort, tree reductions): ``depth``
    levels of splitting, leaf work, then ``depth`` levels of merging.
    """
    if depth < 0:
        raise WorkloadError("divide-and-conquer needs depth >= 0")
    comm = comp * comm_scale
    weights: list[float] = []
    labels: list[str] = []
    edges: dict[tuple[int, int], float] = {}

    def add(label: str) -> int:
        weights.append(comp)
        labels.append(label)
        return len(weights) - 1

    # Divide phase: level-order binary tree.
    divide_levels: list[list[int]] = []
    for level in range(depth + 1):
        ids = [add(f"div{level}.{i}") for i in range(1 << level)]
        if level > 0:
            for i, node in enumerate(ids):
                edges[(divide_levels[level - 1][i // 2], node)] = comm
        divide_levels.append(ids)
    # Conquer phase mirrors back up.
    prev = divide_levels[depth]
    for level in range(depth - 1, -1, -1):
        ids = [add(f"mrg{level}.{i}") for i in range(1 << level)]
        for i, node in enumerate(ids):
            edges[(prev[2 * i], node)] = comm
            edges[(prev[2 * i + 1], node)] = comm
        prev = ids
    return TaskGraph(weights, edges, labels, name=f"dnc-{depth}")
