"""Layered random DAG generator.

Layer-structured DAGs ("Tomasulo graphs" / layr-pred style) are the other
standard random family in the scheduling literature: nodes live in
layers, edges connect earlier layers to strictly later ones.  They give
controllable parallelism width, which the classic §4.1 generator does
not.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.taskgraph import TaskGraph
from repro.util.rng import RngStream

__all__ = ["layered_random_graph"]


def layered_random_graph(
    num_layers: int,
    width: int,
    *,
    edge_prob: float = 0.4,
    skip_prob: float = 0.1,
    mean_comp: float = 40.0,
    ccr: float = 1.0,
    seed: int = 0,
) -> TaskGraph:
    """Generate a layered random DAG.

    Parameters
    ----------
    num_layers:
        Number of layers (≥ 1); layer 0 is the entry layer.
    width:
        Nodes per layer (≥ 1).
    edge_prob:
        Probability of an edge between a node and each node of the next
        layer.
    skip_prob:
        Probability of an edge between a node and each node two layers
        down (models non-nearest-neighbour dependencies).
    mean_comp, ccr:
        Cost distribution parameters as in the paper generator.
    seed:
        RNG seed.

    Every non-entry node is guaranteed at least one parent in the previous
    layer, so the graph is connected layer-to-layer and all entry nodes
    sit in layer 0.
    """
    if num_layers < 1 or width < 1:
        raise WorkloadError("layered graph needs num_layers >= 1 and width >= 1")
    if not (0.0 <= edge_prob <= 1.0 and 0.0 <= skip_prob <= 1.0):
        raise WorkloadError("probabilities must lie in [0, 1]")

    rng = RngStream(seed, name=f"layered-{num_layers}x{width}")
    v = num_layers * width
    weights = [rng.uniform_int_mean(mean_comp) for _ in range(v)]
    mean_comm = mean_comp * ccr

    def node_id(layer: int, pos: int) -> int:
        return layer * width + pos

    edges: dict[tuple[int, int], float] = {}
    for layer in range(num_layers - 1):
        for pos in range(width):
            u = node_id(layer, pos)
            for pos2 in range(width):
                w = node_id(layer + 1, pos2)
                if rng.random() < edge_prob:
                    edges[(u, w)] = float(rng.uniform_int_mean(mean_comm))
            if layer + 2 < num_layers:
                for pos2 in range(width):
                    w = node_id(layer + 2, pos2)
                    if rng.random() < skip_prob:
                        edges[(u, w)] = float(rng.uniform_int_mean(mean_comm))

    # Guarantee each non-entry node has a parent in the previous layer.
    for layer in range(1, num_layers):
        for pos in range(width):
            w = node_id(layer, pos)
            if not any((node_id(layer - 1, p), w) in edges for p in range(width)) and not any(
                (node_id(layer - 2, p), w) in edges for p in range(width) if layer >= 2
            ):
                parent = node_id(layer - 1, rng.randint(0, width - 1))
                edges[(parent, w)] = float(rng.uniform_int_mean(mean_comm))

    return TaskGraph(
        weights, edges, name=f"layered-{num_layers}x{width}-seed{seed}"
    )
