"""Classic structured task graphs: chains, trees, fork-join, diamonds.

These shapes have known optimal or easily-reasoned schedules, which makes
them the backbone of the unit-test suite, and they model real program
skeletons (pipelines, reductions, map-reduce phases).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "chain_graph",
    "independent_tasks",
    "fork_join_graph",
    "out_tree_graph",
    "in_tree_graph",
    "diamond_graph",
]


def chain_graph(length: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A linear pipeline ``n1 → n2 → … → nk``.

    Its optimal schedule on any system is the whole chain on one
    processor: length = ``length * comp``.
    """
    if length < 1:
        raise WorkloadError("chain needs length >= 1")
    weights = [comp] * length
    edges = {(i, i + 1): comm for i in range(length - 1)}
    return TaskGraph(weights, edges, name=f"chain-{length}")


def independent_tasks(count: int, *, comp: float = 10.0) -> TaskGraph:
    """``count`` tasks with no edges (embarrassingly parallel)."""
    if count < 1:
        raise WorkloadError("need at least one task")
    return TaskGraph([comp] * count, {}, name=f"independent-{count}")


def fork_join_graph(
    width: int, *, comp: float = 10.0, comm: float = 5.0,
    fork_comp: float = 10.0, join_comp: float = 10.0,
) -> TaskGraph:
    """Fork-join: one source fans out to ``width`` tasks that join in a sink.

    Node 0 is the fork, nodes ``1..width`` the parallel stage, node
    ``width+1`` the join.
    """
    if width < 1:
        raise WorkloadError("fork-join needs width >= 1")
    weights = [fork_comp] + [comp] * width + [join_comp]
    edges: dict[tuple[int, int], float] = {}
    sink = width + 1
    for i in range(1, width + 1):
        edges[(0, i)] = comm
        edges[(i, sink)] = comm
    return TaskGraph(weights, edges, name=f"forkjoin-{width}")


def out_tree_graph(
    depth: int, branching: int = 2, *, comp: float = 10.0, comm: float = 5.0
) -> TaskGraph:
    """Complete out-tree (divide phase): root spawns ``branching`` children
    per level for ``depth`` levels.  ``depth = 0`` is a single node.
    """
    if depth < 0 or branching < 1:
        raise WorkloadError("out-tree needs depth >= 0 and branching >= 1")
    weights: list[float] = []
    edges: dict[tuple[int, int], float] = {}
    # Level-order ids: level L starts at (b^L - 1)/(b - 1) for b > 1.
    level_nodes: list[list[int]] = []
    next_id = 0
    for level in range(depth + 1):
        count = branching**level
        ids = list(range(next_id, next_id + count))
        next_id += count
        level_nodes.append(ids)
        weights.extend([comp] * count)
        if level > 0:
            parents = level_nodes[level - 1]
            for j, node in enumerate(ids):
                edges[(parents[j // branching], node)] = comm
    return TaskGraph(weights, edges, name=f"outtree-d{depth}-b{branching}")


def in_tree_graph(
    depth: int, branching: int = 2, *, comp: float = 10.0, comm: float = 5.0
) -> TaskGraph:
    """Complete in-tree (reduction): mirror image of :func:`out_tree_graph`.

    Leaves first in id order, root (single exit) last.
    """
    out = out_tree_graph(depth, branching, comp=comp, comm=comm)
    v = out.num_nodes
    # Reverse every edge and relabel ids so the graph stays topologically
    # ordered smallest-id-first (mirror node i -> v-1-i).
    weights = list(reversed(out.weights))
    edges = {
        (v - 1 - child, v - 1 - parent): cost
        for (parent, child), cost in out.edges.items()
    }
    return TaskGraph(weights, edges, name=f"intree-d{depth}-b{branching}")


def diamond_graph(size: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """Diamond lattice: expands 1→2→…→``size`` then contracts back to 1.

    A classic structure with layer widths 1, 2, …, size, …, 2, 1 where
    each node feeds its neighbours in the next layer (wavefront
    computations, triangular solves).
    """
    if size < 1:
        raise WorkloadError("diamond needs size >= 1")
    layers: list[list[int]] = []
    next_id = 0
    widths = list(range(1, size + 1)) + list(range(size - 1, 0, -1))
    weights: list[float] = []
    for width in widths:
        layers.append(list(range(next_id, next_id + width)))
        weights.extend([comp] * width)
        next_id += width
    edges: dict[tuple[int, int], float] = {}
    for li in range(len(layers) - 1):
        cur, nxt = layers[li], layers[li + 1]
        if len(nxt) > len(cur):  # expanding half
            for j, u in enumerate(cur):
                edges[(u, nxt[j])] = comm
                edges[(u, nxt[j + 1])] = comm
        else:  # contracting half
            for j, w in enumerate(nxt):
                edges[(cur[j], w)] = comm
                edges[(cur[j + 1], w)] = comm
    return TaskGraph(weights, edges, name=f"diamond-{size}")
