"""Task-graph generators.

* :mod:`repro.graph.generators.random_paper` — the exact §4.1 recipe used
  for the paper's Table 1 and Figures 6-7 workloads.
* :mod:`repro.graph.generators.layered` — layer-structured random DAGs.
* :mod:`repro.graph.generators.classic` — chains, trees, fork-join,
  diamonds, independent tasks.
* :mod:`repro.graph.generators.kernels` — task graphs of numerical
  kernels (Gaussian elimination, LU, FFT, Laplace stencil,
  divide-and-conquer), the workload families the scheduling literature
  uses for application-shaped evaluation.
"""

from repro.graph.generators.classic import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    in_tree_graph,
    independent_tasks,
    out_tree_graph,
)
from repro.graph.generators.kernels import (
    divide_and_conquer_graph,
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
    lu_decomposition_graph,
)
from repro.graph.generators.layered import layered_random_graph
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph

__all__ = [
    "PaperGraphSpec",
    "paper_random_graph",
    "layered_random_graph",
    "chain_graph",
    "independent_tasks",
    "fork_join_graph",
    "out_tree_graph",
    "in_tree_graph",
    "diamond_graph",
    "gaussian_elimination_graph",
    "lu_decomposition_graph",
    "fft_graph",
    "laplace_graph",
    "divide_and_conquer_graph",
]
