"""Graph attributes used for search guidance: levels, critical path, CCR.

Definitions (paper §3.2):

* **t-level** of node *n*: length of the longest path from an entry node
  to *n*, excluding *n* itself.  Path length sums node **and** edge
  weights.  Highly correlates with the node's earliest possible start.
* **b-level** of node *n*: length of the longest path from *n* to an exit
  node (node and edge weights; includes *n*'s own weight).  Bounded by
  the critical-path length.
* **static level** *sl(n)*: b-level computed over node weights only
  (edge costs ignored).  This is the quantity the paper's admissible
  heuristic ``h`` uses.
* **critical path (CP)**: any longest path through the DAG; its length
  equals ``max_n (t-level(n) + b-level(n))``.
* **CCR**: average communication cost divided by average computation
  cost (paper §2).

All of these are computed in O(v + e) by dynamic programming over a
topological order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "GraphLevels",
    "compute_levels",
    "critical_path",
    "graph_ccr",
    "priority_order",
]

# Cache keyed by graph identity: TaskGraph is immutable, so levels never
# change for a given object.  Uses id()-keyed weak semantics via the
# graph's own hash would be wasteful; a plain dict on the graph object is
# impossible (slots), so we memoise here keyed by id with a generation
# check on object identity.
_levels_cache: dict[int, tuple[TaskGraph, "GraphLevels"]] = {}


@dataclass(frozen=True)
class GraphLevels:
    """All level attributes of a task graph, per node.

    Attributes
    ----------
    t_level:
        Longest entry→n path length excluding n (computation + communication).
    b_level:
        Longest n→exit path length including n (computation + communication).
    static_level:
        Longest n→exit path length including n, node weights only.
    cp_length:
        Critical-path length including communication
        (= max over n of ``t_level[n] + b_level[n]``).
    static_cp_length:
        Critical-path length over node weights only (= max static level of
        an entry node); a valid makespan lower bound on any schedule that
        keeps CP nodes on one processor.
    """

    t_level: tuple[float, ...]
    b_level: tuple[float, ...]
    static_level: tuple[float, ...]
    cp_length: float
    static_cp_length: float

    def priority(self, node: int) -> float:
        """The paper's composite node priority: b-level + t-level."""
        return self.b_level[node] + self.t_level[node]


def compute_levels(graph: TaskGraph) -> GraphLevels:
    """Compute t-levels, b-levels and static levels in O(v + e).

    Results are memoised per graph object (graphs are immutable).
    """
    cached = _levels_cache.get(id(graph))
    if cached is not None and cached[0] is graph:
        return cached[1]

    v = graph.num_nodes
    order = graph.topological_order
    weights = graph.weights

    t_level = [0.0] * v
    for n in order:
        w_n_start = t_level[n]
        for child, c in graph.succ_edges(n):
            cand = w_n_start + weights[n] + c
            if cand > t_level[child]:
                t_level[child] = cand

    b_level = [0.0] * v
    static_level = [0.0] * v
    for n in reversed(order):
        best_b = 0.0
        best_sl = 0.0
        for child, c in graph.succ_edges(n):
            if b_level[child] + c > best_b:
                best_b = b_level[child] + c
            if static_level[child] > best_sl:
                best_sl = static_level[child]
        b_level[n] = weights[n] + best_b
        static_level[n] = weights[n] + best_sl

    cp = max(t_level[n] + b_level[n] for n in range(v))
    static_cp = max(static_level[n] for n in graph.entry_nodes)
    levels = GraphLevels(
        t_level=tuple(t_level),
        b_level=tuple(b_level),
        static_level=tuple(static_level),
        cp_length=cp,
        static_cp_length=static_cp,
    )
    if len(_levels_cache) > 4096:  # bound memory across long experiment runs
        _levels_cache.clear()
    _levels_cache[id(graph)] = (graph, levels)
    return levels


def critical_path(graph: TaskGraph) -> tuple[float, tuple[int, ...]]:
    """Return ``(cp_length, node path)`` for one critical path.

    The path is reconstructed greedily by following, from the entry node
    with the largest b-level, the child whose ``c + b_level`` attains the
    parent's b-level minus its own weight.  Deterministic (smallest id on
    ties).
    """
    levels = compute_levels(graph)
    b = levels.b_level
    start = max(graph.entry_nodes, key=lambda n: (b[n], -n))
    path = [start]
    node = start
    while graph.succs(node):
        target = b[node] - graph.weight(node)
        nxt = None
        for child, c in graph.succ_edges(node):
            if abs(c + b[child] - target) < 1e-9:
                if nxt is None or child < nxt:
                    nxt = child
        if nxt is None:  # numerical fallback: take max child
            nxt = max(graph.succs(node), key=lambda ch: c_plus_b(graph, node, ch, b))
        path.append(nxt)
        node = nxt
    return levels.cp_length, tuple(path)


def c_plus_b(graph: TaskGraph, u: int, child: int, b: tuple[float, ...]) -> float:
    """Helper: edge cost plus child's b-level (path continuation value)."""
    return graph.comm_cost(u, child) + b[child]


def graph_ccr(graph: TaskGraph) -> float:
    """Communication-to-computation ratio of the DAG (paper §2)."""
    return graph.mean_communication / graph.mean_computation


def priority_order(graph: TaskGraph) -> tuple[int, ...]:
    """Nodes in decreasing ``b-level + t-level`` priority (paper §3.2).

    Ties are broken by larger b-level first (prefers more "urgent" work),
    then by node id for determinism.
    """
    levels = compute_levels(graph)
    return tuple(
        sorted(
            range(graph.num_nodes),
            key=lambda n: (
                -(levels.b_level[n] + levels.t_level[n]),
                -levels.b_level[n],
                n,
            ),
        )
    )
