"""The paper's worked example: Figure 1(a) DAG and Figure 1(b) system.

The DAG below reproduces every number in the paper's Figure 2 table
(static levels, b-levels, t-levels) and leads to the optimal schedule
length of 14 shown in Figure 4.  Edge costs are reconstructed from the
level table:

========  ======  =========  ========
node      sl      b-level    t-level
========  ======  =========  ========
n1        12      19         0
n2        10      16         3
n3        10      16         3
n4         6      10         4
n5         7      12         7
n6         2       2         17
========  ======  =========  ========
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph

__all__ = ["paper_example_dag", "paper_example_system", "PAPER_OPTIMAL_LENGTH"]

#: Optimal schedule length of the worked example (paper Figure 4).
PAPER_OPTIMAL_LENGTH = 14.0


def paper_example_dag() -> TaskGraph:
    """Figure 1(a): the 6-node example DAG.

    Nodes n1..n6 map to ids 0..5.  Weights: 2, 3, 3, 4, 5, 2.
    Edges: n1→n2 (1), n1→n3 (1), n1→n4 (2), n2→n5 (1), n3→n5 (1),
    n4→n6 (4), n5→n6 (5).
    """
    weights = [2, 3, 3, 4, 5, 2]
    edges = {
        (0, 1): 1,
        (0, 2): 1,
        (0, 3): 2,
        (1, 4): 1,
        (2, 4): 1,
        (3, 5): 4,
        (4, 5): 5,
    }
    return TaskGraph(weights, edges, name="icpp98-figure1a")


def paper_example_system():
    """Figure 1(b): the 3-processor ring target system.

    Imported lazily to avoid a circular package dependency at import time
    (``repro.system`` depends only on ``repro.errors``).
    """
    from repro.system.processors import ProcessorSystem

    return ProcessorSystem.ring(3, name="icpp98-figure1b")
