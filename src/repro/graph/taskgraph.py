"""The weighted-DAG task graph data structure.

Design notes
------------
Nodes are dense integers ``0..v-1`` internally (optionally labelled),
because every hot structure downstream — bitmask state sets, numpy cost
vectors, adjacency lists — indexes by position.  The structure is
immutable after construction: analysis results (levels, topological
order) are computed lazily once and cached, which is safe only because
the graph cannot change.

Edges are stored both as a ``(u, v) -> cost`` dict (O(1) cost lookup
during state expansion) and as per-node predecessor/successor tuples
(cache-friendly iteration in the expansion inner loop).

For the search hot path the adjacency is additionally flattened into
CSR-style arrays (``pred_flat``/``pred_offsets``/``pred_costs`` and the
successor mirror) plus one predecessor *bitmask* per node, so that

* iterating a node's in-edges is a contiguous slice walk with no
  generator frames or dict probes, and
* "are all parents of ``n`` scheduled?" / "is ``m`` a parent of ``n``?"
  are single big-int AND operations against a scheduled-set mask.

The flat views are built lazily on first access (one O(v + e) pass) and
cached — safe because the graph is immutable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.errors import CycleError, GraphError

__all__ = ["TaskGraph"]

Edge = tuple[int, int]


class TaskGraph:
    """An immutable node- and edge-weighted DAG.

    Parameters
    ----------
    weights:
        Computation cost per node, indexed by node id.  Must be positive.
    edges:
        Mapping ``(u, v) -> communication cost`` with non-negative costs.
    labels:
        Optional human-readable node names (defaults to ``n1..nv``,
        matching the paper's examples which are 1-based).
    name:
        Optional graph name used in reports.

    Raises
    ------
    GraphError
        On malformed weights/edges (wrong node ids, negative costs).
    CycleError
        When the edge set contains a directed cycle.
    """

    __slots__ = (
        "_weights",
        "_edge_cost",
        "_preds",
        "_succs",
        "_labels",
        "name",
        "_topo_order",
        "_entries",
        "_exits",
        "_hash",
        "_pred_offsets",
        "_pred_flat",
        "_pred_costs",
        "_succ_offsets",
        "_succ_flat",
        "_succ_costs",
        "_pred_masks",
        "_pred_pairs",
    )

    def __init__(
        self,
        weights: Sequence[float],
        edges: Mapping[Edge, float],
        labels: Sequence[str] | None = None,
        name: str = "taskgraph",
    ) -> None:
        v = len(weights)
        if v == 0:
            raise GraphError("a task graph needs at least one node")
        for i, w in enumerate(weights):
            if not (w > 0):
                raise GraphError(f"node {i} has non-positive weight {w!r}")
        self._weights = tuple(float(w) for w in weights)

        pred_lists: list[list[int]] = [[] for _ in range(v)]
        succ_lists: list[list[int]] = [[] for _ in range(v)]
        edge_cost: dict[Edge, float] = {}
        for (u, w_node), cost in edges.items():
            if not (0 <= u < v and 0 <= w_node < v):
                raise GraphError(f"edge ({u}, {w_node}) references unknown node")
            if u == w_node:
                raise GraphError(f"self-loop on node {u}")
            if cost < 0:
                raise GraphError(f"edge ({u}, {w_node}) has negative cost {cost!r}")
            if (u, w_node) in edge_cost:
                raise GraphError(f"duplicate edge ({u}, {w_node})")
            edge_cost[(u, w_node)] = float(cost)
            succ_lists[u].append(w_node)
            pred_lists[w_node].append(u)
        self._edge_cost = edge_cost
        self._preds = tuple(tuple(sorted(p)) for p in pred_lists)
        self._succs = tuple(tuple(sorted(s)) for s in succ_lists)

        if labels is None:
            labels = tuple(f"n{i + 1}" for i in range(v))
        else:
            if len(labels) != v:
                raise GraphError("labels length must equal number of nodes")
            labels = tuple(str(x) for x in labels)
        self._labels = labels
        self.name = name

        self._topo_order = self._compute_topo_order()
        self._entries = tuple(i for i in range(v) if not self._preds[i])
        self._exits = tuple(i for i in range(v) if not self._succs[i])
        self._hash: int | None = None
        self._pred_offsets: tuple[int, ...] | None = None
        self._pred_flat: tuple[int, ...] | None = None
        self._pred_costs: tuple[float, ...] | None = None
        self._succ_offsets: tuple[int, ...] | None = None
        self._succ_flat: tuple[int, ...] | None = None
        self._succ_costs: tuple[float, ...] | None = None
        self._pred_masks: tuple[int, ...] | None = None
        self._pred_pairs: tuple[tuple[tuple[int, float], ...], ...] | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of tasks v."""
        return len(self._weights)

    @property
    def num_edges(self) -> int:
        """Number of precedence edges e."""
        return len(self._edge_cost)

    @property
    def weights(self) -> tuple[float, ...]:
        """Computation cost per node."""
        return self._weights

    def weight(self, node: int) -> float:
        """Computation cost ``w(n)`` of one node."""
        return self._weights[node]

    @property
    def edges(self) -> Mapping[Edge, float]:
        """Read-only view of the ``(u, v) -> cost`` edge map."""
        return dict(self._edge_cost)

    def comm_cost(self, u: int, v: int) -> float:
        """Communication cost ``c(u, v)`` of edge ``u -> v``.

        Raises
        ------
        KeyError
            When no such edge exists.
        """
        return self._edge_cost[(u, v)]

    def preds(self, node: int) -> tuple[int, ...]:
        """Parents of ``node`` in ascending id order."""
        return self._preds[node]

    def succs(self, node: int) -> tuple[int, ...]:
        """Children of ``node`` in ascending id order."""
        return self._succs[node]

    @property
    def entry_nodes(self) -> tuple[int, ...]:
        """Nodes with no parents."""
        return self._entries

    @property
    def exit_nodes(self) -> tuple[int, ...]:
        """Nodes with no children."""
        return self._exits

    @property
    def labels(self) -> tuple[str, ...]:
        """Human-readable node names."""
        return self._labels

    def label(self, node: int) -> str:
        """Human-readable name of one node."""
        return self._labels[node]

    def index_of(self, label: str) -> int:
        """Node id for a label.

        Raises
        ------
        KeyError
            When the label is unknown.
        """
        try:
            return self._labels.index(label)
        except ValueError:
            raise KeyError(f"unknown node label {label!r}") from None

    @property
    def topological_order(self) -> tuple[int, ...]:
        """A fixed topological order (Kahn's algorithm, smallest-id first).

        Deterministic: ties are broken by node id, so two identical graphs
        have identical orders.
        """
        return self._topo_order

    # -- aggregates --------------------------------------------------------

    @property
    def total_computation(self) -> float:
        """Sum of all node weights."""
        return sum(self._weights)

    @property
    def total_communication(self) -> float:
        """Sum of all edge costs."""
        return sum(self._edge_cost.values())

    @property
    def mean_computation(self) -> float:
        """Average node weight."""
        return self.total_computation / self.num_nodes

    @property
    def mean_communication(self) -> float:
        """Average edge cost (0.0 for edge-less graphs)."""
        return self.total_communication / self.num_edges if self._edge_cost else 0.0

    # -- flat (CSR) views for the search hot path --------------------------

    def _build_csr(self) -> None:
        """One O(v + e) pass building every flat adjacency view."""
        v = len(self._weights)
        cost = self._edge_cost
        pred_offsets = [0] * (v + 1)
        pred_flat: list[int] = []
        pred_costs: list[float] = []
        succ_offsets = [0] * (v + 1)
        succ_flat: list[int] = []
        succ_costs: list[float] = []
        pred_masks = [0] * v
        pred_pairs: list[tuple[tuple[int, float], ...]] = []
        for n in range(v):
            mask = 0
            pairs: list[tuple[int, float]] = []
            for p in self._preds[n]:
                c = cost[(p, n)]
                pred_flat.append(p)
                pred_costs.append(c)
                pairs.append((p, c))
                mask |= 1 << p
            pred_offsets[n + 1] = len(pred_flat)
            pred_masks[n] = mask
            pred_pairs.append(tuple(pairs))
            for s in self._succs[n]:
                succ_flat.append(s)
                succ_costs.append(cost[(n, s)])
            succ_offsets[n + 1] = len(succ_flat)
        self._pred_offsets = tuple(pred_offsets)
        self._pred_flat = tuple(pred_flat)
        self._pred_costs = tuple(pred_costs)
        self._succ_offsets = tuple(succ_offsets)
        self._succ_flat = tuple(succ_flat)
        self._succ_costs = tuple(succ_costs)
        self._pred_masks = tuple(pred_masks)
        self._pred_pairs = tuple(pred_pairs)

    @property
    def pred_offsets(self) -> tuple[int, ...]:
        """CSR row pointers: preds of ``n`` live at ``pred_flat[o[n]:o[n+1]]``."""
        if self._pred_offsets is None:
            self._build_csr()
        return self._pred_offsets  # type: ignore[return-value]

    @property
    def pred_flat(self) -> tuple[int, ...]:
        """Concatenated predecessor lists (ascending id within each node)."""
        if self._pred_flat is None:
            self._build_csr()
        return self._pred_flat  # type: ignore[return-value]

    @property
    def pred_costs(self) -> tuple[float, ...]:
        """Edge cost aligned with :attr:`pred_flat`."""
        if self._pred_costs is None:
            self._build_csr()
        return self._pred_costs  # type: ignore[return-value]

    @property
    def succ_offsets(self) -> tuple[int, ...]:
        """CSR row pointers for the successor mirror."""
        if self._succ_offsets is None:
            self._build_csr()
        return self._succ_offsets  # type: ignore[return-value]

    @property
    def succ_flat(self) -> tuple[int, ...]:
        """Concatenated successor lists (ascending id within each node)."""
        if self._succ_flat is None:
            self._build_csr()
        return self._succ_flat  # type: ignore[return-value]

    @property
    def succ_costs(self) -> tuple[float, ...]:
        """Edge cost aligned with :attr:`succ_flat`."""
        if self._succ_costs is None:
            self._build_csr()
        return self._succ_costs  # type: ignore[return-value]

    @property
    def pred_pairs(self) -> tuple[tuple[tuple[int, float], ...], ...]:
        """Per-node ``((parent, cost), ...)`` tuples.

        The EST inner loop unpacks these directly — measurably faster in
        CPython than offset arithmetic into the flat arrays, at the cost
        of one extra materialized view.
        """
        if self._pred_pairs is None:
            self._build_csr()
        return self._pred_pairs  # type: ignore[return-value]

    @property
    def pred_masks(self) -> tuple[int, ...]:
        """Per-node bitmask of predecessors.

        ``pred_masks[n] & scheduled_mask == pred_masks[n]`` iff every
        parent of ``n`` is in the scheduled set — the O(1) readiness test
        of the delta-encoded search states.
        """
        if self._pred_masks is None:
            self._build_csr()
        return self._pred_masks  # type: ignore[return-value]

    # -- derived views -----------------------------------------------------

    def pred_edges(self, node: int) -> Iterable[tuple[int, float]]:
        """Yield ``(parent, c(parent, node))`` pairs."""
        cost = self._edge_cost
        for p in self._preds[node]:
            yield p, cost[(p, node)]

    def succ_edges(self, node: int) -> Iterable[tuple[int, float]]:
        """Yield ``(child, c(node, child))`` pairs."""
        cost = self._edge_cost
        for s in self._succs[node]:
            yield s, cost[(node, s)]

    def relabeled(self, labels: Sequence[str]) -> "TaskGraph":
        """Copy of this graph with different node labels."""
        return TaskGraph(self._weights, self._edge_cost, labels, name=self.name)

    def induced_prefix(self, nodes: Iterable[int]) -> "TaskGraph":
        """Sub-graph induced by a downward-closed node set.

        Used by tests and by the approximate lower bounds; node ids are
        compacted to ``0..k-1`` preserving relative order.

        Raises
        ------
        GraphError
            When ``nodes`` is not closed under predecessors.
        """
        keep = sorted(set(nodes))
        keep_set = set(keep)
        for n in keep:
            for p in self._preds[n]:
                if p not in keep_set:
                    raise GraphError(
                        f"prefix not downward closed: {n} kept but parent {p} dropped"
                    )
        remap = {old: new for new, old in enumerate(keep)}
        weights = [self._weights[n] for n in keep]
        edges = {
            (remap[u], remap[w]): c
            for (u, w), c in self._edge_cost.items()
            if u in keep_set and w in keep_set
        }
        labels = [self._labels[n] for n in keep]
        return TaskGraph(weights, edges, labels, name=f"{self.name}[prefix]")

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, v={self.num_nodes}, "
            f"e={self.num_edges})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self._weights == other._weights
            and self._edge_cost == other._edge_cost
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._weights, frozenset(self._edge_cost.items()), self._labels)
            )
        return self._hash

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_lists(
        cls,
        weights: Sequence[float],
        edge_list: Iterable[tuple[int, int, float]],
        labels: Sequence[str] | None = None,
        name: str = "taskgraph",
    ) -> "TaskGraph":
        """Build from an ``(u, v, cost)`` triple list."""
        return cls(weights, {(u, v): c for u, v, c in edge_list}, labels, name)

    # -- internals -----------------------------------------------------------

    def _compute_topo_order(self) -> tuple[int, ...]:
        """Kahn topological sort with a smallest-id-first tie-break."""
        import heapq

        v = len(self._weights)
        indegree = [len(self._preds[i]) for i in range(v)]
        ready = [i for i in range(v) if indegree[i] == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            n = heapq.heappop(ready)
            order.append(n)
            for s in self._succs[n]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(ready, s)
        if len(order) != v:
            raise CycleError(
                f"task graph contains a cycle ({v - len(order)} nodes unreachable)"
            )
        return tuple(order)
