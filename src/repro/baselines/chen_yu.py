"""The Chen & Yu branch-and-bound-with-underestimates baseline.

Re-implementation of the comparison algorithm of the paper's Table 1
(G.-H. Chen and J.-S. Yu, "A Branch-And-Bound-With-Underestimates
Algorithm for the Task Assignment Problem with Precedence Constraint",
ICDCS 1990) as the paper describes it (§2):

    "Their algorithm uses a complicated underestimate cost function …
    For generating a new state, the function is computed by first
    determining all of the complete execution paths extended from the
    node to be scheduled.  To take into consideration inter-processor
    communication, an exhaustive matching of the execution paths and
    the processor graph is then performed to determine the minimum
    communication required.  Finally, the finish time of the last exit
    node is taken as the value of the underestimate cost function."

That is exactly what :class:`ChenYuCost` does per generated state:

1. enumerate every directed path from the just-scheduled node to an
   exit node;
2. for each path, find the processor assignment minimizing execution
   plus communication time via dynamic programming over
   (path position × PE) — the "matching against the processor graph";
3. the underestimate is the latest such minimal exit-finish time.

The per-path DP value maxed over all paths is mathematically equal to a
single O(e·p²) tree DP (proved in ``tests/baselines/test_chen_yu.py``
by direct comparison), so a safety cap on the number of enumerated
paths can fall back to the DP **without changing the bound** — only the
per-state cost changes, which is the very quantity Table 1 measures.
The bound is admissible (every schedule must execute some root-to-exit
continuation of the new node, paying at least the matched minimum), so
the baseline also returns optimal schedules — just slower, because each
state evaluation walks the whole downstream path set while the paper's
``h`` reads one precomputed static level.

The search skeleton is best-first (A*-style), the strongest variant of
branch-and-bound-with-underestimates; §3.2 pruning techniques are *not*
applied (they are this paper's contribution), matching the Table-1
comparison. Duplicate detection is kept so runs terminate in reasonable
memory — disabling it only slows Chen & Yu further.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.schedule.partial import PartialSchedule
from repro.search.astar import astar_schedule
from repro.search.costs import CostFunction
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

__all__ = ["ChenYuCost", "chen_yu_schedule"]


class ChenYuCost(CostFunction):
    """Path-matching underestimate, evaluated per generated state.

    Parameters
    ----------
    graph, system:
        Problem instance.
    max_paths:
        Safety cap on paths enumerated per evaluation; beyond it the
        equal-valued O(e·p²) DP fallback finishes the computation.
    """

    name = "chen-yu"

    def __init__(
        self,
        graph: TaskGraph,
        system: ProcessorSystem,
        *,
        max_paths: int = 10_000,
    ) -> None:
        super().__init__(graph, system)
        self.max_paths = max_paths
        self.paths_enumerated = 0  # instrumentation: total path-DP runs
        self._pes = tuple(range(system.num_pes))
        self._speeds = system.speeds
        # DP fallback values B(j, q), computed lazily once.
        self._dp: dict[tuple[int, int], float] | None = None

    # -- the underestimate ---------------------------------------------------

    def h(self, ps: PartialSchedule) -> float:
        self.evaluations += 1
        n = ps.last_node
        if n < 0:
            return 0.0
        p = ps.pes[n]
        remaining = self._max_path_bound(n, p)
        bound = ps.finishes[n] + remaining
        g = ps.makespan
        return bound - g if bound > g else 0.0

    # -- path enumeration with per-path processor matching ----------------------

    def _max_path_bound(self, node: int, pe: int) -> float:
        """Latest minimal exit finish over all paths from ``node``,
        counted from FT(node) (i.e. excluding node's own execution)."""
        graph = self.graph
        if not graph.succs(node):
            return 0.0
        budget = self.max_paths
        best = 0.0
        # Iterative DFS over paths; the running DP vector ``costs[q]`` is
        # the minimal time to reach (and finish) the current path tail on
        # PE q, starting from the moment ``node`` completes on ``pe``.
        start_vec = self._step_vec_from(node, pe)
        stack: list[tuple[int, tuple[float, ...]]] = []
        for child, vec in start_vec:
            stack.append((child, vec))
        while stack:
            current, costs = stack.pop()
            self.paths_enumerated += 1
            budget -= 1
            if budget <= 0:
                # Cap hit: finish with the equal-valued DP bound for the
                # remaining sub-path-set.
                dp = self._dp_table()
                rest = min(
                    costs[q] - self._exec(current, q) + dp[(current, q)]
                    for q in self._pes
                )
                if rest > best:
                    best = rest
                continue
            succs = graph.succs(current)
            if not succs:
                val = min(costs)
                if val > best:
                    best = val
                continue
            for child in succs:
                c = graph.comm_cost(current, child)
                stack.append((child, self._advance(costs, c, child)))
        return best

    def _exec(self, node: int, pe: int) -> float:
        return self.graph.weight(node) / self._speeds[pe]

    def _step_vec_from(
        self, node: int, pe: int
    ) -> list[tuple[int, tuple[float, ...]]]:
        """Initial DP vectors for each child of the just-scheduled node."""
        out = []
        graph = self.graph
        for child, c in graph.succ_edges(node):
            vec = tuple(
                self.system.comm_time(c, pe, q) + self._exec(child, q)
                for q in self._pes
            )
            out.append((child, vec))
        return out

    def _advance(
        self, costs: tuple[float, ...], comm: float, child: int
    ) -> tuple[float, ...]:
        """One DP step: extend the matched path by ``child``."""
        system = self.system
        pes = self._pes
        new = []
        for q in pes:
            best = min(
                costs[r] + system.comm_time(comm, r, q) for r in pes
            )
            new.append(best + self._exec(child, q))
        return tuple(new)

    # -- DP fallback (provably equal to exhaustive path matching) -----------------

    def _dp_table(self) -> dict[tuple[int, int], float]:
        """``B(j, q)``: minimal-matching longest remaining path from j on q."""
        if self._dp is None:
            graph = self.graph
            system = self.system
            pes = self._pes
            dp: dict[tuple[int, int], float] = {}
            for j in reversed(graph.topological_order):
                for q in pes:
                    succ_best = 0.0
                    for child, c in graph.succ_edges(j):
                        cont = min(
                            system.comm_time(c, q, r) + dp[(child, r)]
                            for r in pes
                        )
                        if cont > succ_best:
                            succ_best = cont
                    dp[(j, q)] = self._exec(j, q) + succ_best
            self._dp = dp
        return self._dp

    def dp_bound(self, node: int, pe: int) -> float:
        """The O(e·p²) bound from ``node`` on ``pe`` (for tests/ablation)."""
        dp = self._dp_table()
        graph = self.graph
        best = 0.0
        for child, c in graph.succ_edges(node):
            cont = min(
                self.system.comm_time(c, pe, r) + dp[(child, r)]
                for r in self._pes
            )
            if cont > best:
                best = cont
        return best


def chen_yu_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    budget: Budget | None = None,
    max_paths: int = 10_000,
) -> SearchResult:
    """Optimal scheduling with the Chen & Yu baseline.

    Best-first branch-and-bound with the path-matching underestimate and
    none of the §3.2 pruning techniques.
    """
    cost = ChenYuCost(graph, system, max_paths=max_paths)
    result = astar_schedule(
        graph,
        system,
        pruning=PruningConfig.none(),
        cost=cost,
        budget=budget,
    )
    result.algorithm = "chen-yu" + ("" if result.optimal else "(budget)")
    result.stats.pruning.extra["paths_enumerated"] = cost.paths_enumerated
    return result
