"""Baseline algorithms the paper compares against."""

from repro.baselines.chen_yu import ChenYuCost, chen_yu_schedule

__all__ = ["ChenYuCost", "chen_yu_schedule"]
