"""Parallel A* scheduling (paper §3.3) on a simulated message-passing machine.

The paper ran on the Intel Paragon.  Per the substitution table in
DESIGN.md, we reproduce the *algorithmic* quantities that drive its
speedup results — per-PPE expansions, communication rounds, duplicated
work from local-only CLOSED lists — on a deterministic discrete-event
simulation (:mod:`repro.parallel.machine`), and additionally provide
two real :mod:`multiprocessing` backends for genuine multi-core runs:
the static-partition :mod:`repro.parallel.mp_backend` and the
hash-distributed shared-incumbent HDA* engine
(:mod:`repro.parallel.hda`, registered as ``engine="hda"`` in
:mod:`repro.search`).
"""

from repro.parallel.hda import hda_astar_schedule
from repro.parallel.machine import MachineSpec, PPENetwork
from repro.parallel.metrics import SpeedupReport, measure_speedup
from repro.parallel.mp_backend import multiprocessing_astar_schedule
from repro.parallel.parallel_astar import ParallelResult, parallel_astar_schedule

__all__ = [
    "MachineSpec",
    "PPENetwork",
    "parallel_astar_schedule",
    "ParallelResult",
    "SpeedupReport",
    "measure_speedup",
    "multiprocessing_astar_schedule",
    "hda_astar_schedule",
]
