"""Real multi-core parallel A* via :mod:`multiprocessing`.

The simulator (:mod:`repro.parallel.parallel_astar`) reproduces the
paper's *measurements*; this backend demonstrates the same algorithmic
idea — independent searches over a partitioned frontier with a shared
initial upper bound — on actual cores:

1. expand the root best-first until the frontier holds at least
   ``workers × oversubscribe`` states (static partitioning — the
   paper's initial load-distribution phase);
2. deal the frontier interleaved by cost (paper Case 3) to the workers;
3. each worker runs the *serial* A* over its sub-frontier to completion
   with the global list-scheduling upper bound;
4. reduce: the minimum-length result wins.

As in the paper, workers share no CLOSED list, so placements reachable
from two frontier states are explored twice — the "extra states"
overhead.  No dynamic load balancing is attempted (the simulator covers
that); this backend is intentionally the simplest *correct* real-cores
variant: every optimal completion passes through the frontier, each
sub-search is exhaustive below its seeds, hence the reduced minimum is
the global optimum.

Workers receive the problem as plain serializable dicts (graph dict +
system parameters + seed placements) and rebuild them, avoiding any
pickling of library classes across the process boundary.  Seed states
cross that boundary via :meth:`PartialSchedule.compact` — the delta
states hold parent references, so pickling the objects themselves would
drag each seed's whole ancestor chain along; the compact ``(node, pe,
start)`` triples inflate back by replay on the worker side.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable

from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = [
    "multiprocessing_astar_schedule",
    "pool_context",
    "system_to_args",
    "system_from_args",
    "SolverPool",
]

def multiprocessing_astar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    workers: int = 2,
    oversubscribe: int = 4,
    pruning: PruningConfig | None = None,
    cost: str = "paper",
    budget: Budget | None = None,
) -> SearchResult:
    """Optimal scheduling using ``workers`` OS processes.

    Falls back to the serial engine when the frontier cannot be split
    (trivial instances) or ``workers == 1``.
    """
    from repro.search.astar import astar_schedule

    if pruning is None:
        pruning = PruningConfig.all()
    if workers <= 1:
        return astar_schedule(graph, system, pruning=pruning, cost=cost, budget=budget)

    # -- step 1: build the frontier --------------------------------------------
    target = workers * max(1, oversubscribe)
    cost_fn = make_cost_function(cost, graph, system)
    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)
    fallback = fast_upper_bound_schedule(graph, system)
    upper = fallback.length if pruning.upper_bound else math.inf

    root = PartialSchedule.empty(graph, system)
    frontier: list[tuple[float, int, PartialSchedule]] = [(0.0, 0, root)]
    seen = SignatureSet(verify=pruning.verify_signatures)
    seen.add(root.dedup_key, lambda: root.signature)
    seq = 1
    best_goal: Schedule | None = None
    while frontier and len(frontier) < target:
        f, _s, state = heapq.heappop(frontier)
        if state.is_complete():
            if best_goal is None or state.makespan < best_goal.length:
                best_goal = state.to_schedule()
            # A goal popped at the frontier minimum is already optimal.
            stats.states_expanded += 1
            return SearchResult(
                schedule=best_goal, optimal=True, bound=1.0,
                stats=stats, algorithm="mp-astar(trivial)",
            )
        stats.states_expanded += 1
        for child in expander.children(state, seen):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            if pruning.upper_bound and tol.gt(cf, upper):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            heapq.heappush(frontier, (cf, seq, child))
            seq += 1
    if not frontier:
        return astar_schedule(graph, system, pruning=pruning, cost=cost, budget=budget)

    # -- step 2: deal seeds interleaved by cost ---------------------------------
    from repro.parallel.partition import distribute_seeds

    seeds = [(f, state) for f, _s, state in frontier]
    buckets = distribute_seeds(seeds, workers)

    # -- step 3: fan out -----------------------------------------------------------
    graph_dict = graph_to_dict(graph)
    system_args = system_to_args(system)
    jobs: list[tuple[Any, ...]] = []
    for bucket in buckets:
        seed_assignments = [
            state.compact()  # type: ignore[union-attr]
            for state in bucket
        ]
        jobs.append((graph_dict, system_args, seed_assignments, cost, upper))

    with pool_context().Pool(processes=workers) as pool:
        outcomes = pool.map(_worker_search, jobs)

    # -- step 4: reduce ---------------------------------------------------------------
    best: Schedule | None = best_goal
    total_expanded = stats.states_expanded
    total_generated = stats.states_generated
    for assignment, expanded, generated in outcomes:
        total_expanded += expanded
        total_generated += generated
        if assignment is not None:
            sched = Schedule(graph, system, {n: (pe, st) for n, pe, st in assignment})
            if best is None or sched.length < best.length:
                best = sched
    stats.states_expanded = total_expanded
    stats.states_generated = total_generated
    if best is None or fallback.length < best.length:
        best = fallback
    return SearchResult(
        schedule=best, optimal=True, bound=1.0, stats=stats,
        algorithm=f"mp-astar(workers={workers})",
    )


# -- worker side (top-level functions: picklable under spawn) -----------------


def _worker_search(job: tuple[Any, ...]) -> tuple[list | None, int, int]:
    """Run serial A* restricted to one seed bucket; return the best."""
    graph_dict, system_args, seed_assignments, cost, upper = job
    graph = graph_from_dict(graph_dict)
    system = system_from_args(system_args)
    cost_fn = make_cost_function(cost, graph, system)
    pruning = PruningConfig.all()
    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)

    open_heap: list[tuple[float, int, PartialSchedule]] = []
    seen = SignatureSet()
    seq = 0
    for placements in seed_assignments:
        state = PartialSchedule.inflate(graph, system, placements)
        heapq.heappush(open_heap, (0.0, seq, state))  # f re-costed below
        seq += 1
    # Re-cost seeds properly (f was a placeholder).
    recosted: list[tuple[float, int, PartialSchedule]] = []
    for _f, s, state in open_heap:
        recosted.append((state.makespan + cost_fn.h(state), s, state))
    heapq.heapify(recosted)
    open_heap = recosted

    best_assignment: list | None = None
    best_len = math.inf
    expanded = 0
    generated = 0
    while open_heap:
        f, _s, state = heapq.heappop(open_heap)
        if tol.gt(f, min(upper, best_len)):
            continue
        if state.is_complete():
            expanded += 1
            if state.makespan < best_len:
                best_len = state.makespan
                best_assignment = list(state.compact())
            break  # best-first: first goal popped is bucket-optimal
        expanded += 1
        for child in expander.children(state, seen):
            cf = child.makespan + cost_fn.h(child)
            if tol.gt(cf, min(upper, best_len)):
                continue
            generated += 1
            heapq.heappush(open_heap, (cf, seq, child))
            seq += 1
    return best_assignment, expanded, generated


def pool_context() -> mp.context.BaseContext:
    """The multiprocessing context used for all fan-out in this library.

    Prefers ``fork`` (workers inherit the parent's imports and the jobs
    need no re-import cost); falls back to ``spawn`` on platforms
    without it.  Shared by this backend and the batch front-end
    (:mod:`repro.service.batch`).
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def system_to_args(system: ProcessorSystem) -> dict[str, Any]:
    """Serialize a processor system to a plain picklable dict."""
    return {
        "num_pes": system.num_pes,
        "links": sorted(system.links),
        "speeds": list(system.speeds),
        "distance_scaled": system.distance_scaled,
        "name": system.name,
    }


def system_from_args(args: dict[str, Any]) -> ProcessorSystem:
    """Inverse of :func:`system_to_args` (runs on the worker side)."""
    return ProcessorSystem(
        args["num_pes"],
        links=[tuple(l) for l in args["links"]],
        speeds=args["speeds"],
        distance_scaled=args["distance_scaled"],
        name=args["name"],
    )


def _warmup() -> int:
    """No-op task used to force worker processes to exist (see
    :meth:`SolverPool.warm`)."""
    return mp.current_process().pid or 0


class SolverPool:
    """A persistent worker-process pool for instance-level fan-out.

    ``run_batch`` historically spun up a fresh ``multiprocessing.Pool``
    per call and tore it down afterwards — fine for a one-shot CLI
    invocation, wasteful for anything long-running.  This class is the
    pool abstraction both front-ends now share: the batch runner borrows
    one transiently when the caller passed plain ``workers=N``, and the
    solver daemon (:mod:`repro.service.server`) keeps one alive across
    requests so process startup and module import are paid once per
    *server*, not once per request.

    Built on :class:`concurrent.futures.ProcessPoolExecutor` with this
    library's :func:`pool_context`:

    * :meth:`submit` returns a real :class:`~concurrent.futures.Future`,
      so an asyncio event loop can await jobs via ``run_in_executor``;
    * executor workers are **non-daemonic** (unlike ``mp.Pool``'s), so a
      pooled job may itself spawn HDA* worker processes —
      ``solver_workers`` composes with request fan-out instead of
      silently degrading to serial;
    * :meth:`warm` pre-forks every worker up front, moving the fork cost
      out of the first request's latency.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers, mp_context=pool_context()
        )

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The underlying executor (for ``loop.run_in_executor``)."""
        if self._executor is None:
            raise RuntimeError("SolverPool is closed")
        return self._executor

    def submit(self, fn: Callable, /, *args: Any) -> Future:
        """Schedule ``fn(*args)`` on a pool worker."""
        return self.executor.submit(fn, *args)

    def map(self, fn: Callable, jobs: Iterable[Any]) -> list[Any]:
        """Run ``fn`` over ``jobs`` on the pool; results in job order."""
        return list(self.executor.map(fn, jobs))

    def warm(self) -> None:
        """Spawn all worker processes now rather than on first use."""
        for f in [self.executor.submit(_warmup) for _ in range(self.workers)]:
            f.result()

    def rebuild(self, *, broken: ProcessPoolExecutor | None = None) -> bool:
        """Replace the executor after a worker crash.

        A :class:`ProcessPoolExecutor` whose worker died (OOM kill,
        segfault) is broken forever — every later submit raises
        ``BrokenProcessPool``.  Long-lived owners (the solver daemon)
        call this to swap in a fresh executor.  Pass the executor the
        caller observed failing as ``broken``: if another caller
        already rebuilt (the pool's executor is no longer that object),
        this is a no-op, so concurrent observers of one crash perform
        one rebuild.  Returns True when a rebuild happened.
        """
        if self._executor is None:
            raise RuntimeError("SolverPool is closed")
        if broken is not None and self._executor is not broken:
            return False
        self._executor.shutdown(wait=False)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=pool_context()
        )
        return True

    def liveness(self) -> str:
        """Non-blocking health verdict: empty string = live.

        The deep-readiness probe (``/healthz?deep=1``) must not submit
        work to find out whether the pool can solve — on a busy pool a
        ping would queue behind real searches and time out, flagging a
        perfectly healthy shard as dead.  Instead this inspects
        executor state directly: the broken flag a worker death sets,
        and the worker processes' own liveness (the same
        ``_processes`` view the server benchmark's kill harness uses).
        A lazily-started executor with no processes yet is live — the
        first submit will fork them.  Returns a human-readable reason
        when unhealthy.
        """
        ex = self._executor
        if ex is None:
            return "pool closed"
        if getattr(ex, "_broken", False):
            return "executor broken (worker process died)"
        processes = getattr(ex, "_processes", None) or {}
        dead = sum(1 for p in processes.values() if not p.is_alive())
        if dead:
            return f"{dead} of {len(processes)} worker processes dead"
        return ""

    def close(self, *, wait: bool = True) -> None:
        """Shut the pool down; idempotent."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    @property
    def closed(self) -> bool:
        return self._executor is None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SolverPool(workers={self.workers}, {state})"
