"""Initial load distribution of the parallel A* (paper §3.3).

Every PPE expands the initial empty state; with ``k`` seed states and
``q`` PPEs three cases apply:

* **Case 1 (k > q)** — every PPE gets one state, extras are dealt
  round-robin.
* **Case 2 (k = q)** — every PPE gets exactly one state.
* **Case 3 (k < q)** — states keep being expanded (best-first) until at
  least ``q`` exist; the pool is then sorted by increasing cost and
  dealt *interleaved*: the best state to PPE 0, the 2nd to PPE q−1, the
  3rd to PPE 1, the 4th to PPE q−2 … so good states spread evenly;
  extras are dealt round-robin.
"""

from __future__ import annotations

__all__ = ["interleaved_order", "distribute_seeds"]


def interleaved_order(q: int) -> list[int]:
    """The PPE visiting order of Case 3: 0, q−1, 1, q−2, 2, …

    >>> interleaved_order(5)
    [0, 4, 1, 3, 2]
    """
    order: list[int] = []
    lo, hi = 0, q - 1
    while lo <= hi:
        order.append(lo)
        if hi != lo:
            order.append(hi)
        lo += 1
        hi -= 1
    return order


def distribute_seeds(
    seeds: list[tuple[float, object]], q: int
) -> list[list[object]]:
    """Deal cost-sorted seed states to ``q`` PPEs per the §3.3 cases.

    Parameters
    ----------
    seeds:
        ``(cost, state)`` pairs (any comparable cost; states opaque).
    q:
        Number of PPEs.

    Returns
    -------
    list of per-PPE state lists.

    The deal is interleaved for the first ``q`` states and round-robin
    beyond them, which covers all three §3.3 cases: with k ≤ q there are
    simply no extras.  (The *expansion until k ≥ q* part of Case 3 is
    the simulator's job; this function only deals what it is given.)
    """
    buckets: list[list[object]] = [[] for _ in range(q)]
    ordered = sorted(seeds, key=lambda cs: cs[0])
    order = interleaved_order(q)
    for rank, (_cost, state) in enumerate(ordered):
        if rank < q:
            buckets[order[rank]].append(state)
        else:
            buckets[rank % q].append(state)
    return buckets
