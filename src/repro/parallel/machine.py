"""The simulated message-passing machine the parallel A* runs on.

Physical processing elements (PPEs — the paper's term, distinct from
the *target* PEs the DAG is scheduled onto) are connected by a
topology; the Intel Paragon's is a 2-D mesh.  Time is counted in
abstract units: one state expansion costs ``expansion_cost`` units and
one message ``comm_latency`` units.  The defaults make expansion ~10×
a message, mirroring the paper's observation that the Paragon
"permits the PPEs to exchange small messages in a short time compared
with the processing time for states expansion".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SystemError_
from repro.system import topology as topo

__all__ = ["MachineSpec", "PPENetwork"]


@dataclass(frozen=True)
class MachineSpec:
    """Configuration of the simulated parallel machine.

    Attributes
    ----------
    num_ppes:
        Number of physical PEs running the search (paper: 2/4/8/16).
    topology:
        ``"mesh"`` (default, Paragon-style), ``"ring"``, ``"chain"``,
        ``"hypercube"``, ``"clique"`` or ``"star"``.
    expansion_cost:
        Simulated time units per state expansion.
    comm_latency:
        Simulated time units per message sent or received.
    """

    num_ppes: int = 4
    topology: str = "mesh"
    expansion_cost: float = 1.0
    comm_latency: float = 0.1

    def __post_init__(self) -> None:
        if self.num_ppes < 1:
            raise SystemError_("need at least one PPE")
        if self.expansion_cost <= 0 or self.comm_latency < 0:
            raise SystemError_("costs must be positive (latency may be 0)")
        if self.topology not in ("mesh", "ring", "chain", "hypercube", "clique", "star"):
            raise SystemError_(f"unknown topology {self.topology!r}")


class PPENetwork:
    """Neighbour structure of the PPEs plus simulated-time bookkeeping."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        q = spec.num_ppes
        if spec.topology == "mesh":
            rows, cols = _near_square(q)
            links = topo.mesh_links(rows, cols)
            self.shape: tuple[int, ...] = (rows, cols)
        elif spec.topology == "ring":
            links = topo.ring_links(q)
            self.shape = (q,)
        elif spec.topology == "chain":
            links = topo.chain_links(q)
            self.shape = (q,)
        elif spec.topology == "hypercube":
            dim = (q - 1).bit_length()
            if 1 << dim != q:
                raise SystemError_(
                    f"hypercube needs a power-of-two PPE count, got {q}"
                )
            links = topo.hypercube_links(dim)
            self.shape = (q,)
        elif spec.topology == "star":
            links = topo.star_links(q)
            self.shape = (q,)
        else:  # clique
            links = topo.fully_connected_links(q)
            self.shape = (q,)

        neighbor_sets: list[set[int]] = [set() for _ in range(q)]
        for i, j in links:
            neighbor_sets[i].add(j)
            neighbor_sets[j].add(i)
        self.neighbors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in neighbor_sets
        )

    @property
    def num_ppes(self) -> int:
        """PPE count q."""
        return self.spec.num_ppes

    def group(self, ppe: int) -> tuple[int, ...]:
        """The communication group of a PPE: itself plus its neighbours."""
        return (ppe, *self.neighbors[ppe])


@dataclass
class _ClockStats:
    """Per-run simulated-time accounting (internal to the simulator)."""

    makespan: float = 0.0
    expansion_units: float = 0.0
    comm_units: float = 0.0
    idle_units: float = 0.0
    phases: int = 0
    messages: int = 0
    per_ppe_expansions: list[int] = field(default_factory=list)


def _near_square(q: int) -> tuple[int, int]:
    """Factor ``q`` into the most square ``rows × cols`` mesh."""
    best = (1, q)
    for rows in range(1, int(math.isqrt(q)) + 1):
        if q % rows == 0:
            best = (rows, q // rows)
    return best
