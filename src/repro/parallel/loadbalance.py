"""Round-robin load sharing (paper §3.3, "ROUND-ROBIN LOAD SHARING").

    (1) Determine the average number of un-expanded states N_avg in all
        the OPEN lists.
    (2) Every PPE whose local un-expanded count exceeds N_avg
        distributes the surplus states to the deficit PPEs in a
        round-robin fashion.

The states a donor sends are its *worst* (largest-cost) OPEN entries:
its best states are what local best-first progress feeds on, and the
receivers integrate the donated states into their own OPEN lists, so
global best-first order is preserved either way while the counts
equalize.
"""

from __future__ import annotations

__all__ = ["plan_round_robin_shares", "balance_counts"]


def balance_counts(counts: list[int]) -> list[int]:
    """Target per-PPE counts after §3.3 balancing (sum preserved).

    Every count moves toward ``floor(avg)``/``ceil(avg)``; donors lose
    surplus, receivers gain it round-robin.
    """
    total = sum(counts)
    q = len(counts)
    base = total // q
    remainder = total % q
    # The first `remainder` PPEs in deficit order end up with base+1.
    targets = [base] * q
    order = sorted(range(q), key=lambda i: (counts[i], i))
    for k in range(remainder):
        targets[order[k]] += 1
    return targets


def plan_round_robin_shares(counts: list[int]) -> list[tuple[int, int, int]]:
    """Plan §3.3 transfers: ``(donor, receiver, how_many)`` triples.

    Donors are PPEs above the average; receivers below it.  Transfers
    are dealt one state at a time round-robin over the receivers, so
    the result matches the paper's dealing order exactly and is
    deterministic.
    """
    q = len(counts)
    if q <= 1:
        return []
    avg = sum(counts) / q
    donors = [i for i in range(q) if counts[i] > avg]
    receivers = [i for i in range(q) if counts[i] < avg]
    if not donors or not receivers:
        return []

    working = list(counts)
    transfers: dict[tuple[int, int], int] = {}
    r_idx = 0
    for d in donors:
        while working[d] - 1 >= avg:
            # Find the next receiver still below average (round-robin).
            for _ in range(len(receivers)):
                r = receivers[r_idx % len(receivers)]
                r_idx += 1
                if working[r] + 1 <= avg:
                    break
            else:
                break  # nobody can take more without crossing the average
            working[d] -= 1
            working[r] += 1
            key = (d, r)
            transfers[key] = transfers.get(key, 0) + 1
    return [(d, r, n) for (d, r), n in sorted(transfers.items())]
