"""HDA*: hash-distributed parallel A* on real OS processes.

This is the §3.3 parallel search idea implemented the way the
follow-up literature converged on (Kishimoto et al.'s HDA*; Orr &
Sinnen's parallel duplicate-free scheduling search): instead of
independent sub-searches over a statically-partitioned frontier
(:mod:`repro.parallel.mp_backend`), every state has exactly one *owner*
among the workers, determined by hashing its duplicate key
(:func:`repro.parallel.shared.owner_of`).  Consequences:

* **Exact global duplicate detection, no shared CLOSED list.**  Both
  expansion orders of the same placement hash to the same owner, whose
  local :class:`~repro.search.dedup.SignatureSet` kills the second copy
  — the "extra states" overhead of the paper's local-CLOSED design
  disappears without any serializing global structure.
* **Dynamic load balance for free.**  The hash scatters each
  expansion's children uniformly across workers, so no explicit
  round-robin sharing phase (§3.3's listing) is needed.
* **Asynchronous communication.**  Children owned elsewhere travel in
  batches over per-worker :mod:`multiprocessing` queues as
  ``(f, h, wire)`` records.  The wire form is the snapshot
  :meth:`~repro.schedule.partial.PartialSchedule.to_wire` — one O(v)
  reconstruction on the owner instead of replaying the delta chain
  with :meth:`~repro.schedule.partial.PartialSchedule.inflate`
  (measured ~10x cheaper per transfer; the O(depth) ``compact`` form
  still carries the seeds' ancestry-free payloads and the final result
  back to the parent).  ``f``/``h`` travel along so the owner never
  re-runs the cost function, and the duplicate key is readable off the
  wire tuple so duplicates die *before* paying the reconstruction.
* **Shared incumbent.**  The one global datum is the best known
  complete-schedule length (:class:`~repro.parallel.shared.
  SharedIncumbent`), seeded with the §3.2 list-schedule bound (or a
  caller-provided incumbent) and tightened by every goal any worker
  generates.  Workers prune states that provably cannot beat it.
* **Sender-side duplicate filtering.**  A worker records the keys it
  forwards in the same signature set as its own states, so the 80-90%
  of candidates that are transposition duplicates generated *by the
  same worker* die at the sender — before the cost function, the
  compact encoding, and the queue.

Termination is quiescence, not a goal pop: workers prune with
``(1+ε)·f ≥ U`` (tolerance-aware, :mod:`repro.util.tolerance`), so
when every worker is idle and no batch is in flight — detected by the
counter protocol of :class:`~repro.parallel.shared.WorkerBoard` — every
un-expanded state provably satisfied the bound and the incumbent is
(ε-)optimal.  For ε = 0 this returns the same optimal makespan as
serial A*, byte for byte (property-tested); the *work* differs, the
answer cannot.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
import queue as queue_mod
import time
from typing import Any

from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.obs.probe import SearchProbe
from repro.obs.trace import Tracer
from repro.parallel.mp_backend import pool_context, system_from_args, system_to_args
from repro.parallel.shared import Outbox, SharedIncumbent, WorkerBoard, owner_of
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.testing import faults
from repro.util import tolerance as tol
from repro.util.timing import Budget, process_rss_mb

__all__ = ["hda_astar_schedule"]

#: States per queue message (amortizes pickling and pipe writes).
_BATCH_SIZE = 64
#: Inbox depth in batches — back pressure so a fast producer cannot
#: buffer unbounded states at a drowning consumer (see Outbox).
_QUEUE_DEPTH = 64
#: Expansions between inbox drains in the worker loop.
_CHUNK = 128
#: Worker sleep while idle, and the parent's monitor poll period.
_IDLE_SLEEP = 0.0005
_MONITOR_SLEEP = 0.002
#: Seconds the parent waits for worker results/joins after stop.
_SHUTDOWN_GRACE = 10.0

# Shared flags word: bit 0 = some worker exhausted its budget share,
# bit 1 = some worker died with an exception, bit 2 = some worker hit
# its memory ceiling (tracked states or RSS).
_FLAG_BUDGET = 1
_FLAG_ERROR = 2
_FLAG_MEMORY = 4

#: Default no-progress timeout before a live worker is declared hung.
_STALL_TIMEOUT = 30.0


def hda_astar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    *,
    workers: int = 2,
    epsilon: float = 0.0,
    pruning: PruningConfig | None = None,
    cost: str = "paper",
    budget: Budget | None = None,
    incumbent: Schedule | None = None,
    oversubscribe: int = 4,
    state_cls: type = PartialSchedule,
    worker_stall_timeout: float = _STALL_TIMEOUT,
    probe: SearchProbe | None = None,
    tracer: Tracer | None = None,
) -> SearchResult:
    """Optimal (or ε-optimal) scheduling on ``workers`` OS processes.

    Parameters mirror :func:`repro.search.astar.astar_schedule`, plus:

    workers:
        Worker process count; ``<= 1`` falls back to the serial engine
        (as does running inside a daemonic pool worker, which may not
        spawn children, or with a non-default ``state_cls`` — the wire
        formats are the delta states' ``to_wire()``/``compact()``).
    epsilon:
        ε ≥ 0; workers prune states with ``(1+ε)·f ≥ U``, so quiescence
        proves the returned schedule within ``1+ε`` of optimal (exactly
        optimal for ε = 0).
    oversubscribe:
        The serial seed phase expands best-first until the frontier
        holds ``workers × oversubscribe`` states before dealing them to
        their owners — enough initial work that no worker starves while
        the first expansion waves propagate.
    worker_stall_timeout:
        Seconds without a heartbeat before a live worker is declared
        hung and the run aborts with the incumbent (a dead process is
        caught faster via ``is_alive``); the quiescence protocol alone
        would wait on a wedged worker forever.
    probe:
        Optional :class:`SearchProbe`.  The seed phase ticks it
        directly; workers buffer local samples and the coordinator
        merges them into one global timeline (expansions summed across
        workers at sorted wall offsets).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  Workers buffer
        span/event records locally and ship them back over the results
        queue; the coordinator absorbs them under its current span.

    Returns the same :class:`SearchResult` contract as the serial
    engines; ``algorithm`` is ``hda(workers=N)`` and ``optimal`` is
    True only for proven ε = 0 runs.
    """
    from repro.search.astar import astar_schedule

    if pruning is None:
        pruning = PruningConfig.all()
    serial_fallback = (
        workers <= 1
        or state_cls is not PartialSchedule
        or mp.current_process().daemon
    )
    if serial_fallback:
        if epsilon > 0.0:
            # Keep the ε contract: Aε* proves the same 1+ε bound the
            # distributed pruning would have.  focal has no incumbent
            # parameter, so honor a better caller-held incumbent by
            # substituting it — it satisfies any bound focal proved.
            from repro.search.focal import focal_schedule

            res = focal_schedule(
                graph, system, epsilon, pruning=pruning, cost=cost,
                budget=budget, state_cls=state_cls, probe=probe,
            )
            if incumbent is not None and incumbent.length < res.length:
                res.schedule = incumbent
            return res
        return astar_schedule(
            graph, system, pruning=pruning, cost=cost, budget=budget,
            incumbent=incumbent, state_cls=state_cls, probe=probe,
        )
    if budget is None:
        budget = Budget.unlimited()
    budget.start()
    t0 = time.perf_counter()

    cost_fn = make_cost_function(cost, graph, system)
    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)

    fallback = fast_upper_bound_schedule(graph, system)
    if incumbent is not None and incumbent.length < fallback.length:
        fallback = incumbent
    upper = fallback.length if pruning.upper_bound else math.inf
    relax = 1.0 + epsilon
    label = (
        f"hda(workers={workers})"
        if epsilon == 0.0
        else f"hda(eps={epsilon},workers={workers})"
    )

    # -- serial seed phase ---------------------------------------------------
    # Best-first expansion until the frontier is wide enough to feed
    # every worker (same discipline as mp_backend's static partitioner).
    target = max(2, workers * max(1, oversubscribe))
    root = state_cls.empty(graph, system)
    frontier: list[tuple[float, float, int, PartialSchedule]] = [
        (0.0, 0.0, 0, root)
    ]
    seen = SignatureSet(verify=pruning.verify_signatures)
    seen.add(root.dedup_key, lambda: root.signature)
    seq = 1
    best_goal: Schedule | None = None
    dup_on = pruning.duplicate_detection

    # Anytime lower bound, same argument as serial A*: each popped
    # frontier minimum (and, once dealt, the deal-time frontier
    # minimum) is a certified floor on the optimum.
    lower = 0.0

    def _finish(
        schedule: Schedule, proven: bool, algorithm: str,
        interrupted: str | None = None,
    ) -> SearchResult:
        stats.wall_seconds = time.perf_counter() - t0
        # += not =: the reduce step has already folded the workers'
        # evaluation counts in; the parent's own are the seed phase's.
        stats.cost_evaluations += cost_fn.evaluations
        lb = (
            schedule.length if proven and epsilon == 0.0
            else min(
                max(lower, schedule.length / relax) if proven else lower,
                schedule.length,
            )
        )
        if probe is not None:
            probe.finish(stats.states_expanded, 0, schedule.length, lb)
        return SearchResult(
            schedule=schedule,
            optimal=proven and epsilon == 0.0,
            bound=relax if proven else math.inf,
            stats=stats,
            algorithm=algorithm,
            lower_bound=lb,
            interrupted=interrupted,
            timeline=probe.timeline() if probe is not None else (),
        )

    while frontier and len(frontier) < target:
        if len(frontier) > stats.max_open_size:
            stats.max_open_size = len(frontier)
        if budget.exhausted(stats.states_expanded, stats.states_generated,
                            len(frontier) + len(seen)):
            best = best_goal if best_goal is not None else fallback
            lower = max(lower, frontier[0][0])
            return _finish(best, False, f"hda(budget,workers={workers})",
                           interrupted=budget.reason or "budget")
        f, h, _s, state = heapq.heappop(frontier)
        if f > lower:
            lower = f
        stats.states_expanded += 1
        if probe is not None:
            probe.tick(
                stats.states_expanded, len(frontier),
                best_goal.length if best_goal is not None else math.inf,
                lower,
            )
        if state.is_complete():
            # A goal popped at the frontier minimum is already optimal.
            return _finish(state.to_schedule(), True, f"hda(seed,workers={workers})")
        for child in expander.children(state, seen if dup_on else None):
            ch = cost_fn.h(child)
            cf = child.makespan + ch
            # Raw `<` is deliberate: a complete child is only exempted
            # from the cut when it *strictly* beats the incumbent bound,
            # mirroring the serial engines' exact goal-improvement test
            # so the equivalence suites stay byte-identical.
            if pruning.upper_bound and tol.geq(relax * cf, upper) and not (
                child.is_complete()
                and child.makespan < upper  # repro: ignore[float-compare]
            ):
                stats.pruning.upper_bound_cuts += 1
                continue
            stats.states_generated += 1
            if child.is_complete():
                if best_goal is None or child.makespan < best_goal.length:
                    best_goal = child.to_schedule()
                    if pruning.upper_bound:
                        upper = min(upper, best_goal.length)
            heapq.heappush(frontier, (cf, ch, seq, child))
            seq += 1
    if not frontier:
        # Every candidate fell to the bound: the incumbent is optimal.
        best = best_goal if best_goal is not None else fallback
        return _finish(best, True, f"hda(seed,workers={workers})")

    # -- deal seeds to their owners -----------------------------------------
    seed_buckets: list[list[tuple[float, float, tuple]]] = [
        [] for _ in range(workers)
    ]
    # Deal-time floor: the optimal completion passes through (or ties)
    # some dealt state, so min f over the dealt frontier bounds the
    # optimum from below for the rest of the run.
    lower = max(lower, frontier[0][0])
    frontier_keys: set[tuple[int, int]] = set()
    for f, h, _s, state in frontier:
        if state.is_complete():
            continue  # already folded into best_goal / upper
        key = state.dedup_key
        frontier_keys.add(key)
        seed_buckets[owner_of(key, workers)].append((f, h, state.to_wire()))
    # Seed-phase CLOSED keys ride along so no worker re-explores the
    # (tiny) region the seed phase already covered.  The frontier's own
    # keys must NOT ship: the signature set recorded them at generation
    # time, and pre-loading them would make every worker discard its
    # seeds as duplicates — instant (false) quiescence.  In verify mode
    # the exact signatures ship too, so the workers' collision
    # re-verification still covers the imported keys.
    if pruning.verify_signatures:
        closed_keys = [
            (k, sigs) for k, sigs in seen.exact_entries()
            if k not in frontier_keys
        ]
    else:
        closed_keys = [
            (k, None) for k in seen.keys() if k not in frontier_keys
        ]

    # -- shared state and worker spawn --------------------------------------
    ctx = pool_context()
    inc = SharedIncumbent(ctx, upper)
    board = WorkerBoard(ctx, workers)
    stop = ctx.Event()
    flags = ctx.Value("i", 0)
    inboxes = [ctx.Queue(maxsize=_QUEUE_DEPTH) for _ in range(workers)]
    results_q = ctx.Queue()

    # Remaining *global* expansion/generation budgets — workers check
    # the shared sums (WorkerBoard.publish_progress), so an imbalanced
    # worker can never strand the others' share.
    expansion_budget = None
    if budget.max_expanded is not None:
        expansion_budget = max(0, budget.max_expanded - stats.states_expanded)
    generation_budget = None
    if budget.max_generated is not None:
        generation_budget = max(0, budget.max_generated - stats.states_generated)

    job = {
        "graph": graph_to_dict(graph),
        "system": system_to_args(system),
        "cost": cost,
        "epsilon": epsilon,
        "pruning": pruning,
        "workers": workers,
        "closed_keys": closed_keys,
        "max_expanded": expansion_budget,
        "max_generated": generation_budget,
        # Memory ceilings are per worker *process*: RSS is a per-process
        # quantity, and the tracked-state cap divides evenly because the
        # ownership hash scatters states uniformly.
        "max_memory_mb": budget.max_memory_mb,
        "max_tracked": (
            None if budget.max_tracked_states is None
            else max(1, budget.max_tracked_states // workers)
        ),
        # Telemetry: workers buffer locally, the coordinator merges.
        "probe_every": probe.every if probe is not None else None,
        "trace": tracer is not None and tracer.enabled,
        "trace_root": (
            tracer.current_span_id()
            if tracer is not None and tracer.enabled else None
        ),
    }
    board.stamp_all()
    spawn_offset = probe.elapsed() if probe is not None else 0.0
    procs = [
        ctx.Process(
            target=_hda_worker,
            args=(wid, job, seed_buckets[wid], inboxes, results_q,
                  stop, inc, board, flags),
            daemon=True,
        )
        for wid in range(workers)
    ]
    for p in procs:
        p.start()

    # -- monitor loop --------------------------------------------------------
    proven = False
    failed = False
    dirty = False  # a worker died HARD (possible truncated pipe writes)
    cause: str | None = None
    while True:
        if board.quiescent():
            proven = True
            break
        fl = flags.value
        if fl & _FLAG_ERROR:
            failed = True
            cause = "worker-failure"
            break
        if fl & _FLAG_MEMORY:
            cause = "memory"
            break
        if fl & _FLAG_BUDGET:
            cause = "budget"
            break
        if budget.max_seconds is not None and (
            time.perf_counter() - t0
        ) >= budget.max_seconds:
            cause = "time"
            break
        if any(not p.is_alive() for p in procs):
            # Died without raising through _hda_worker: SIGKILL, OOM
            # kill, os._exit.  Unlike the clean _FLAG_ERROR path, the
            # death may have truncated a message mid-pipe.
            failed = True
            dirty = True
            cause = "worker-failure"
            break
        if worker_stall_timeout and board.stale_workers(worker_stall_timeout):
            # Alive but not beating: wedged inside one expansion or an
            # injected stall.  Quiescence can never complete — abort
            # with the incumbent instead of hanging forever.
            failed = True
            cause = "worker-stall"
            break
        time.sleep(_MONITOR_SLEEP)
    stop.set()

    # -- shutdown: drain until every worker exited, then collect -------------
    # The parent must keep draining ALL inboxes while ANY worker is
    # alive: worker exit joins its queue feeders (see the worker-side
    # truncation note), and a feeder blocked on a full pipe can only
    # finish if someone keeps reading it.
    records: dict[int, dict[str, Any]] = {}
    if dirty:
        # A hard-dead worker may have been killed mid-write, leaving a
        # TRUNCATED message in any pipe.  Reading one blocks forever
        # inside Connection._recv (the header promised more bytes than
        # exist), so the parent must not touch the queues at all here —
        # and live peers may already be wedged on the same truncated
        # data, so they get a terminate, not a drain.  The incumbent in
        # hand (seed phase + fallback) stays the answer; the portfolio
        # recovers exactness by retrying / falling back to serial.
        for p in procs:
            p.terminate()
        terminated = True
        for p in procs:
            p.join(timeout=2.0)
    else:
        # A worker that already exited can no longer deliver a result —
        # its record is either in the pipe (the final sweep gets it) or
        # lost — so the drain waits on *live* workers only; waiting on
        # a dead worker's record would burn the whole grace for
        # nothing.  A stalled worker will not answer ``stop`` at all,
        # so only its (fast-exiting) peers get a short grace before the
        # terminate.
        grace = 2.0 if cause == "worker-stall" else _SHUTDOWN_GRACE
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline and any(p.is_alive() for p in procs):
            for q in inboxes:
                try:
                    while True:
                        q.get_nowait()
                except queue_mod.Empty:
                    pass
            try:
                rec = results_q.get(timeout=0.02)
                records[rec["wid"]] = rec
            except queue_mod.Empty:
                pass
        terminated = False
        for p in procs:
            p.join(timeout=0.5)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
                failed = True
                terminated = True
    if not terminated:
        # Final sweep: results may still sit in the pipe after a clean
        # exit.  Skipped after terminate() — a kill mid-write leaves a
        # truncated message that would block even a timed get.
        try:
            while len(records) < workers:
                rec = results_q.get(timeout=0.5)
                records[rec["wid"]] = rec
        except queue_mod.Empty:
            pass
    if len(records) < workers:
        failed = True

    # -- reduce ---------------------------------------------------------------
    best = best_goal if best_goal is not None else fallback
    seed_expanded = stats.states_expanded
    worker_samples: list[tuple[float, int, int, int, float]] = []
    for rec in records.values():
        if rec.get("error"):
            failed = True
            continue
        # One shared aggregation path with the portfolio's stage fold
        # (SearchStats.merge): counters add, max_open takes the peak
        # per-process OPEN (comparable to serial's, which is also
        # per-process memory — NOT a sum: per-worker maxima occur at
        # different times), wall stays end-to-end.
        stats.merge({
            "states_expanded": rec["expanded"],
            "states_generated": rec["generated"],
            "cost_evaluations": rec["cost_evals"],
            "max_open_size": rec["max_open"],
            "pruning": rec["pruning"],
        })
        if tracer is not None:
            tracer.absorb(rec.get("trace"))
        if probe is not None and rec.get("timeline"):
            for off, exp, open_size, blen in rec["timeline"]:
                worker_samples.append((off, rec["wid"], exp, open_size, blen))
        if rec["best"] is not None:
            sched = Schedule(
                graph, system,
                {n: (pe, st) for n, pe, st in rec["best"]},
            )
            if sched.length < best.length:
                best = sched
    if probe is not None and worker_samples:
        # Reconstruct a global convergence timeline: walk all worker
        # samples in wall order, tracking each worker's latest expansion
        # count — the sum (plus the seed phase) approximates total
        # expansions at that instant; the incumbent is the running min
        # and the deal-time floor carries through as the lower bound.
        worker_samples.sort()
        latest: dict[int, int] = {}
        for off, rec_wid, exp, open_size, blen in worker_samples:
            latest[rec_wid] = exp
            probe.record_at(
                spawn_offset + off,
                seed_expanded + sum(latest.values()),
                open_size, blen, lower,
            )
    if failed:
        # Worker crash / stall / lost results — not a budget stop:
        # label it so reports can't misdiagnose an error as exhaustion.
        # The best incumbent is still feasible (and carries the
        # deal-time lower bound), just not proven optimal.
        return _finish(best, False, f"hda(failed,workers={workers})",
                       interrupted=cause or "worker-failure")
    if not proven:
        return _finish(best, False, f"hda(budget,workers={workers})",
                       interrupted=cause or budget.reason or "budget")
    return _finish(best, True, label)


# -- worker side (top-level: picklable under spawn) ---------------------------


def _hda_worker(
    wid: int,
    job: dict[str, Any],
    seeds: list[tuple[float, float, tuple]],
    inboxes: list[Any],
    results_q: Any,
    stop: Any,
    inc: SharedIncumbent,
    board: WorkerBoard,
    flags: Any,
) -> None:
    """One HDA* worker: owns the states that hash to ``wid``."""
    try:
        _hda_worker_loop(
            wid, job, seeds, inboxes, results_q, stop, inc, board, flags
        )
    except Exception as exc:  # pragma: no cover - crash path
        with flags.get_lock():
            flags.value |= _FLAG_ERROR
        try:
            results_q.put({"wid": wid, "error": f"{type(exc).__name__}: {exc}"})
        # Best-effort error report while already crashing: the queue may
        # be torn down, and the original exception (re-raised below) plus
        # the _FLAG_ERROR bit already carry the failure to the parent.
        # repro: ignore[swallowed-error]
        except Exception:
            pass
        raise


def _hda_worker_loop(
    wid: int,
    job: dict[str, Any],
    seeds: list[tuple[float, float, tuple]],
    inboxes: list[Any],
    results_q: Any,
    stop: Any,
    inc: SharedIncumbent,
    board: WorkerBoard,
    flags: Any,
) -> None:
    graph = graph_from_dict(job["graph"])
    system = system_from_args(job["system"])
    cost_fn = make_cost_function(job["cost"], graph, system)
    pruning: PruningConfig = job["pruning"]
    workers: int = job["workers"]
    relax = 1.0 + job["epsilon"]
    max_expanded = job["max_expanded"]
    max_generated = job["max_generated"]
    budget_caps = max_expanded is not None or max_generated is not None
    max_memory_mb = job.get("max_memory_mb")
    max_tracked = job.get("max_tracked")
    ub_on = pruning.upper_bound
    dup_on = pruning.duplicate_detection
    verify = pruning.verify_signatures

    pstats = SearchStats()
    expander = StateExpander(graph, system, pruning, pstats.pruning)
    seen = SignatureSet(verify=verify)
    for key, sigs in job["closed_keys"]:
        if sigs:
            for sig in sigs:
                seen.add(key, lambda s=sig: s)
        else:
            seen.add(key)

    inbox = inboxes[wid]
    outbox = Outbox(wid, inboxes, board, batch_size=_BATCH_SIZE)
    open_heap: list[tuple[float, float, int, PartialSchedule]] = []
    seq = 0
    expanded = 0
    generated = 0
    max_open = 0
    best_len = math.inf
    best_compact: tuple | None = None

    # Worker-local telemetry buffers: convergence samples every
    # ``probe_every`` expansions and (optionally) trace records, both
    # shipped back in the results record and merged by the coordinator.
    probe_every = job.get("probe_every")
    probe_next = probe_every or 0
    samples: list[tuple[float, int, int, float]] = []
    wt0 = time.perf_counter()
    wtracer = Tracer(root=job.get("trace_root")) if job.get("trace") else None
    wspan = None
    if wtracer is not None:
        wspan = wtracer.span("hda.worker", attrs={"wid": wid})
        wspan.__enter__()

    def admit(f: float, h: float, wire: tuple) -> None:
        """Dedup-check an arriving record; rebuild and enqueue survivors.

        The duplicate key is read straight off the wire tuple (mask is
        field 0, zobrist field 5), so duplicates and bound-dead states
        never pay the state reconstruction.
        """
        nonlocal seq
        key = (wire[0], wire[5])
        state: PartialSchedule | None = None
        if dup_on:
            if verify:
                state = PartialSchedule.from_wire(graph, system, wire)
                if seen.check_add(key, lambda s=state: s.signature):
                    pstats.pruning.duplicate_hits += 1
                    return
            elif seen.check_add(key):
                pstats.pruning.duplicate_hits += 1
                return
        if ub_on and tol.geq(relax * f, inc.value):
            # Key stays recorded: the bound only tightens, so any later
            # copy of this state is dead too.
            pstats.pruning.upper_bound_cuts += 1
            return
        if state is None:
            state = PartialSchedule.from_wire(graph, system, wire)
        seq += 1
        heapq.heappush(open_heap, (f, h, seq, state))

    for f, h, wire in seeds:
        admit(f, h, wire)

    budget_flagged = False
    while not stop.is_set():
        # Liveness stamp every iteration (idle ones too): the parent's
        # stall detector keys off this, not off is_alive.
        board.heartbeat(wid)
        drained = False
        while True:
            try:
                batch = inbox.get_nowait()
            except queue_mod.Empty:
                break
            board.set_idle(wid, False)
            board.count_received(wid)
            drained = True
            for f, h, wire in batch:
                admit(f, h, wire)

        if open_heap and not budget_flagged:
            board.set_idle(wid, False)
            # Chaos hooks — inert unless REPRO_FAULTS arms them.
            faults.crash_point("hda-worker-crash")
            faults.raise_point("hda-worker-raise")
            faults.stall_point("hda-worker-stall")
            if (
                max_tracked is not None
                and len(open_heap) + len(seen) >= max_tracked
            ) or (
                max_memory_mb is not None
                and process_rss_mb() >= max_memory_mb
            ):
                # Same coast-and-drain discipline as the work budgets:
                # raise the memory flag, stop expanding, keep the pipes
                # moving until the parent stops everyone.
                budget_flagged = True
                with flags.get_lock():
                    flags.value |= _FLAG_MEMORY
                if wtracer is not None:
                    wtracer.event("hda.worker.memory", attrs={"wid": wid})
                continue
            if budget_caps:
                # Global budget check, once per chunk: publish my
                # counts, compare the shared sums — so a hash-
                # imbalanced worker can never strand the others' share
                # the way a static split would (overshoot <= one chunk
                # per worker).  On exhaustion raise the flag and coast
                # (keep draining so peers never block) until the parent
                # stops everyone; the idle flag stays clear — OPEN is
                # not empty, so quiescence must not be reported.
                board.publish_progress(wid, expanded, generated)
                total_exp, total_gen = board.total_progress()
                if (max_expanded is not None and total_exp >= max_expanded) or (
                    max_generated is not None and total_gen >= max_generated
                ):
                    budget_flagged = True
                    with flags.get_lock():
                        flags.value |= _FLAG_BUDGET
                    if wtracer is not None:
                        wtracer.event("hda.worker.budget", attrs={"wid": wid})
                    continue
            n = 0
            while open_heap and n < _CHUNK:
                upper = inc.value
                f, h, _s, state = heapq.heappop(open_heap)
                if ub_on and tol.geq(relax * f, upper):
                    pstats.pruning.upper_bound_cuts += 1
                    continue
                n += 1
                expanded += 1
                if probe_every and expanded >= probe_next:
                    probe_next = expanded + probe_every
                    samples.append((
                        time.perf_counter() - wt0, expanded,
                        len(open_heap), best_len,
                    ))
                for child in expander.children(state, seen if dup_on else None):
                    ch = cost_fn.h(child)
                    cf = child.makespan + ch
                    if child.is_complete():
                        generated += 1
                        if child.makespan < best_len:
                            best_len = child.makespan
                            best_compact = child.compact()
                            inc.try_improve(best_len)
                        continue
                    if ub_on and tol.geq(relax * cf, upper):
                        pstats.pruning.upper_bound_cuts += 1
                        continue
                    generated += 1
                    dest = owner_of(child.dedup_key, workers)
                    if dest == wid:
                        seq += 1
                        heapq.heappush(open_heap, (cf, ch, seq, child))
                    else:
                        outbox.send(dest, (cf, ch, child.to_wire()))
            if len(open_heap) > max_open:
                max_open = len(open_heap)
            outbox.flush_all()
        elif not drained:
            flushed = outbox.flush_all()
            if not open_heap and flushed and not outbox.pending:
                board.set_idle(wid, True)
            time.sleep(_IDLE_SLEEP)

    # -- shutdown -------------------------------------------------------------
    outbox.drop_all()
    if wspan is not None:
        wspan.__exit__(None, None, None)
    results_q.put(
        {
            "wid": wid,
            "best": list(best_compact) if best_compact is not None else None,
            "best_len": best_len,
            "expanded": expanded,
            "generated": generated,
            "max_open": max_open,
            "cost_evals": cost_fn.evaluations,
            "pruning": pstats.pruning.as_dict(),
            "timeline": samples if probe_every else None,
            "trace": wtracer.drain() if wtracer is not None else None,
        }
    )
    # No cancel_join_thread here, deliberately: killing a feeder can
    # truncate a message mid-pipe, and the *reader* of a truncated
    # message blocks forever inside get_nowait's _recv_bytes (observed
    # as a stuck worker surviving stop).  Process exit instead joins
    # the feeders so every write completes; the parent guarantees the
    # pipes keep draining until every worker has exited.


# Downward registration (parallel -> search is a legal import): the
# registry in repro.search never imports this package, and
# repro/__init__ imports this module eagerly, so "hda" is always
# present in repro.search.ENGINES by the time any caller resolves it.
from repro.search import register_engine  # noqa: E402

register_engine("hda", lambda: hda_astar_schedule)
