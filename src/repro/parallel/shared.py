"""Shared-memory coordination for the HDA* backend.

Three small primitives, each wrapping raw :mod:`multiprocessing`
objects behind the exact protocol the search needs:

* :class:`SharedIncumbent` — the one number every worker's §3.2
  upper-bound pruning reads: the best complete-schedule length found
  anywhere.  Updates are compare-and-set under the value's lock; reads
  are lock-free (a stale read only makes pruning momentarily less
  aggressive, never wrong).
* :class:`WorkerBoard` — per-worker idle flags plus sent/received
  message counters, each slot written by exactly one process, used for
  distributed quiescence detection (below).
* :class:`Outbox` — per-destination batching of outgoing states so a
  queue ``put`` (one pickle + one pipe write) amortizes over
  ``batch_size`` states.

Quiescence detection
--------------------

The search is done when every worker is idle (empty OPEN, empty inbox)
and no message is in flight.  :meth:`WorkerBoard.quiescent` implements
the classic counter protocol: workers increment their ``sent`` slot
*before* putting a batch on a queue, and clear their idle flag *before*
incrementing ``received`` after getting one.  The detector then reads
``idle → counters → idle → counters``; a batch in flight shows up as
``sum(sent) > sum(received)`` (sender counted first), and a batch
consumed between the two scans shows up as a cleared idle flag or a
counter change.  Only a stable double-read — all idle, sums equal,
twice — reports quiescence.
"""

from __future__ import annotations

import queue
import time
from typing import Any

from repro.util.hashing import MASK64, splitmix64

__all__ = ["SharedIncumbent", "WorkerBoard", "Outbox", "owner_of"]


def owner_of(key: tuple[int, int], workers: int) -> int:
    """The worker that owns the state with duplicate key ``key``.

    Pure arithmetic over the ``(mask, zobrist)`` pair, so every process
    maps equal states to the same owner — that single-owner property is
    what keeps each worker's local :class:`~repro.search.dedup.
    SignatureSet` a globally-exact CLOSED check.  The zobrist component
    is already well mixed; folding the (possibly > 64-bit) mask in and
    re-finalizing decorrelates ownership from the OPEN-order structure
    the zobrist keys inherit from placement arithmetic.
    """
    mask, zkey = key
    return splitmix64((zkey ^ (mask & MASK64)) & MASK64) % workers


class SharedIncumbent:
    """A shared, monotonically-decreasing upper bound.

    Semantics: :meth:`value` is always the length of a *real* schedule
    (the initial list-schedule bound or a complete state some worker
    found), so pruning states with ``f >= value`` never loses the
    optimum — the schedule realizing ``value`` is retained by whoever
    produced it.
    """

    def __init__(self, ctx: Any, initial: float) -> None:
        # RawValue + explicit lock: mp.Value's `.value` accessor takes
        # the lock on every *read*, and the workers read once per
        # expansion.  An aligned 8-byte read is atomic on every
        # platform CPython runs on, so reads go lock-free; only the
        # compare-and-set write serializes.
        self._val = ctx.RawValue("d", initial)
        self._lock = ctx.Lock()

    def try_improve(self, length: float) -> bool:
        """Install ``length`` if it beats the current bound (CAS)."""
        with self._lock:
            if length < self._val.value:
                self._val.value = length
                return True
            return False

    @property
    def value(self) -> float:
        """Current bound; lock-free read (stale reads are safe)."""
        return self._val.value


class WorkerBoard:
    """Idle flags + message counters for quiescence detection.

    Every slot has exactly one writer (its worker), so the arrays are
    created lock-free; cross-process visibility is provided by the
    shared ``mmap`` backing and the protocol ordering documented in the
    module docstring.
    """

    def __init__(self, ctx: Any, workers: int) -> None:
        self.workers = workers
        self._idle = ctx.Array("b", workers, lock=False)
        self._sent = ctx.Array("q", workers, lock=False)
        self._received = ctx.Array("q", workers, lock=False)
        self._expanded = ctx.Array("q", workers, lock=False)
        self._generated = ctx.Array("q", workers, lock=False)
        #: Per-worker liveness timestamps (time.monotonic — comparable
        #: across processes on one host, which is the only place
        #: multiprocessing workers live).  Single writer per slot.
        self._beat = ctx.Array("d", workers, lock=False)

    # -- worker side ---------------------------------------------------------

    def heartbeat(self, wid: int) -> None:
        """Stamp worker ``wid`` alive *and making loop progress*.

        Workers call this once per main-loop iteration — including idle
        iterations — so a worker that is alive but wedged inside one
        expansion (or an injected stall) stops beating and the
        supervisor can tell it apart from a merely idle one.
        """
        self._beat[wid] = time.monotonic()

    def stamp_all(self) -> None:
        """Initialize every heartbeat to now (parent, before spawn) so
        slow process startup is not misread as a stall."""
        now = time.monotonic()
        for i in range(self.workers):
            self._beat[i] = now

    def count_sent(self, wid: int) -> None:
        """Record one outgoing batch; call *before* the queue ``put``."""
        self._sent[wid] += 1

    def uncount_sent(self, wid: int) -> None:
        """Roll back :meth:`count_sent` after a failed non-blocking put.

        Safe for the protocol: the transient over-count can only make
        the detector see ``sent > received`` — the no-termination
        direction.
        """
        self._sent[wid] -= 1

    def count_received(self, wid: int) -> None:
        """Record one consumed batch; call *after* clearing idle."""
        self._received[wid] += 1

    def set_idle(self, wid: int, idle: bool) -> None:
        self._idle[wid] = 1 if idle else 0

    def publish_progress(self, wid: int, expanded: int, generated: int) -> None:
        """Publish this worker's absolute work counts (per chunk).

        Feeds the *global* expansion/generation budgets: any worker
        compares the sums against the shared caps, so one
        hash-imbalanced worker cannot strand the rest of the budget the
        way a static per-worker split would.
        """
        self._expanded[wid] = expanded
        self._generated[wid] = generated

    def total_progress(self) -> tuple[int, int]:
        """Sums of published (expanded, generated) counts (racy
        snapshot — stale by at most one chunk per worker, which bounds
        budget overshoot)."""
        return sum(self._expanded), sum(self._generated)

    # -- detector side -------------------------------------------------------

    def stale_workers(self, timeout: float) -> list[int]:
        """Workers whose last heartbeat is older than ``timeout`` seconds.

        The supervisor's hung-worker detector: a dead process also stops
        beating, but the parent already catches that faster via
        ``Process.is_alive``; this is for the live-but-stuck case the
        quiescence protocol alone would wait on forever.
        """
        cutoff = time.monotonic() - timeout
        return [i for i in range(self.workers) if self._beat[i] < cutoff]

    def _scan(self) -> tuple[bool, int, int]:
        return (
            all(self._idle[i] for i in range(self.workers)),
            sum(self._sent),
            sum(self._received),
        )

    def quiescent(self) -> bool:
        """Stable double-read: all idle and no batch in flight, twice."""
        idle1, sent1, recv1 = self._scan()
        if not idle1 or sent1 != recv1:
            return False
        idle2, sent2, recv2 = self._scan()
        return idle2 and sent2 == sent1 and recv2 == recv1

    def counters(self) -> dict[str, int]:
        """Totals for diagnostics (racy snapshot; fine for reports)."""
        return {"sent": sum(self._sent), "received": sum(self._received)}


class Outbox:
    """Per-destination batches of outgoing states with flow control.

    States headed to worker ``j`` accumulate in ``self.batches[j]`` and
    flush as one queue message when the batch fills (or on demand —
    before the owner may go idle, an unflushed batch would deadlock the
    quiescence protocol by hiding work from the counters).

    Sends are **non-blocking**: the inbox queues are bounded (back
    pressure — an unbounded queue lets a fast producer buffer millions
    of states a drowning consumer will mostly discard as duplicates),
    and a full destination simply keeps the batch local for a later
    retry.  Nothing ever blocks on a peer, so the classic bounded-queue
    deadlock (A blocked putting to B putting to A) cannot form; the
    retry converges because every worker drains its inbox at each loop
    iteration before expanding.
    """

    def __init__(
        self,
        wid: int,
        queues: list[Any],
        board: WorkerBoard,
        batch_size: int = 64,
    ) -> None:
        self.wid = wid
        self.queues = queues
        self.board = board
        self.batch_size = batch_size
        self.batches: list[list[Any]] = [[] for _ in queues]

    def send(self, dest: int, item: Any) -> None:
        """Buffer ``item`` for ``dest``; try to flush when full.

        The batch-size bound is soft: if the destination is full the
        batch keeps growing locally and retries on the next flush.
        """
        batch = self.batches[dest]
        batch.append(item)
        if len(batch) >= self.batch_size:
            self.flush_one(dest)

    def flush_one(self, dest: int) -> bool:
        """Try to ship ``dest``'s batch; False when the peer is full."""
        batch = self.batches[dest]
        if not batch:
            return True
        # Count before put: a detector that sees the queue still empty
        # must already see sent > received (see module docstring).
        self.board.count_sent(self.wid)
        try:
            self.queues[dest].put_nowait(batch)
        except queue.Full:
            self.board.uncount_sent(self.wid)
            return False
        self.batches[dest] = []
        return True

    def flush_all(self) -> bool:
        """Try every pending batch; True when all of them shipped."""
        done = True
        for dest in range(len(self.batches)):
            done &= self.flush_one(dest)
        return done

    @property
    def pending(self) -> bool:
        """True while any batch is waiting on a full destination."""
        return any(self.batches)

    def drop_all(self) -> None:
        """Discard pending batches without sending (shutdown path)."""
        for dest in range(len(self.batches)):
            self.batches[dest] = []
