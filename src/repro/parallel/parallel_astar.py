"""The parallel A* scheduling algorithm (paper §3.3) — simulated.

Faithful to the paper's listing:

1.  Every PPE expands the initial (empty) state; redundant equivalent
    states are eliminated by the same §3.2 rules as the serial engine.
2.  If fewer seed states than PPEs exist, expansion continues
    best-first until ``k ≥ q`` (Case 3 of the initial distribution);
    the seed pool is then sorted by cost and dealt interleaved
    (:mod:`repro.parallel.partition`), extras round-robin.
3.  The PPEs then iterate: run local A* for ``T`` expansions, then a
    communication round — exchange best-cost information with the
    neighbouring PPEs, import the elected best state, and run the
    round-robin load sharing of :mod:`repro.parallel.loadbalance`.
    ``T`` starts at ``v/2`` and halves every round down to 2.
4.  A goal found by any PPE is broadcast; the search terminates when
    the best goal's length is ≤ (1+ε) × the minimum ``f`` across all
    OPEN lists (ε = 0 for exact search), which proves (ε-)optimality.

Each PPE checks duplicates **only against its own CLOSED list** (paper:
a global CLOSED list would serialize the search), so the same placement
may be explored by several PPEs — the "extra states not generated in
serial A*" of the paper's Figure 5, and one of the two reasons its
speedups are sub-linear (the other being communication time).

Simulated time: one expansion costs ``spec.expansion_cost`` units; each
message ``spec.comm_latency``.  Phases are barrier-synchronous: a
phase's duration is the maximum per-PPE work in it, plus the
communication round (max per-PPE messages × latency).  Speedup is then
``serial work units / parallel makespan`` (:mod:`repro.parallel.metrics`).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

from repro.graph.taskgraph import TaskGraph
from repro.heuristics.listsched import fast_upper_bound_schedule
from repro.parallel.loadbalance import plan_round_robin_shares
from repro.parallel.machine import MachineSpec, PPENetwork
from repro.parallel.partition import distribute_seeds
from repro.schedule.partial import PartialSchedule
from repro.schedule.schedule import Schedule
from repro.search.costs import CostFunction, make_cost_function
from repro.search.dedup import SignatureSet
from repro.search.expansion import StateExpander
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult, SearchStats
from repro.system.processors import ProcessorSystem
from repro.util import tolerance as tol
from repro.util.timing import Budget

__all__ = ["ParallelResult", "parallel_astar_schedule"]

_FOCAL_WINDOW = 32

# OPEN entries are (f, h, seq, state); heapq orders by the leading triple.
_Entry = tuple[float, float, int, PartialSchedule]


@dataclass
class _PPE:
    """One simulated physical processing element."""

    index: int
    open_heap: list[_Entry] = field(default_factory=list)
    seen: SignatureSet = field(default_factory=SignatureSet)
    expansions: int = 0
    phase_expansions: int = 0
    messages: int = 0

    def peek_f(self) -> float:
        return self.open_heap[0][0] if self.open_heap else math.inf

    def push(self, entry: _Entry) -> None:
        heapq.heappush(self.open_heap, entry)

    def pop_best(self, epsilon: float, have_incumbent: bool = False) -> _Entry:
        """Pop the next state to expand (windowed FOCAL for ε > 0).

        For ε = 0 this is a plain minimum pop (serial-equivalent).  For
        ε > 0, up to ``_FOCAL_WINDOW`` lowest-f entries are examined and
        the deepest one within ``(1+ε)·f_min`` is taken — a bounded-width
        FOCAL list.  The ε-admissibility of the *result* is enforced at
        the termination check, so the window only affects speed.

        Once an incumbent goal exists (``have_incumbent``), selection
        reverts to pure f-order: the termination test needs the *global*
        minimum f to rise to ``incumbent/(1+ε)``, and popping the band
        bottom raises it fastest (deep-first would stall it — the
        find-then-prove pattern of anytime search).
        """
        heap = self.open_heap
        if epsilon == 0.0 or have_incumbent or len(heap) == 1:
            return heapq.heappop(heap)
        first = heapq.heappop(heap)
        bound = (1.0 + epsilon) * first[0]
        window: list[_Entry] = [first]
        while heap and len(window) < _FOCAL_WINDOW and tol.leq(heap[0][0], bound):
            window.append(heapq.heappop(heap))
        # Deepest state (most nodes scheduled) within the bound wins.
        best_i = 0
        best_key = (-window[0][3].num_scheduled, window[0][0])
        for i in range(1, len(window)):
            key = (-window[i][3].num_scheduled, window[i][0])
            if key < best_key:
                best_i, best_key = i, key
        chosen = window.pop(best_i)
        for entry in window:
            heapq.heappush(heap, entry)
        return chosen

    def pop_tail(self) -> _Entry:
        """Remove one poor (large-f) entry in O(1).

        The last element of a binary-heap array is always a leaf and
        never the minimum, so removing it preserves the heap invariant —
        a cheap way for load-sharing donors to shed *surplus* (bad-ish)
        states without an O(n) worst-extraction.
        """
        return self.open_heap.pop()


@dataclass
class ParallelResult:
    """Outcome of a simulated parallel search.

    ``result`` carries the schedule and aggregate work counters; the
    remaining fields describe the simulated execution itself.
    """

    result: SearchResult
    spec: MachineSpec
    makespan_units: float
    phases: int
    comm_rounds: int
    total_messages: int
    per_ppe_expansions: list[int]
    seed_expansions: int
    comm_units: float

    @property
    def schedule(self) -> Schedule | None:
        """The schedule found (None only on budget exhaustion)."""
        return self.result.schedule

    @property
    def total_expansions(self) -> int:
        """Work across all PPEs including duplicated seed work."""
        return sum(self.per_ppe_expansions) + self.seed_expansions

    @property
    def load_imbalance(self) -> float:
        """max/mean per-PPE expansion ratio (1.0 = perfectly balanced)."""
        counts = self.per_ppe_expansions
        mean = sum(counts) / len(counts)
        return (max(counts) / mean) if mean > 0 else 1.0


def parallel_astar_schedule(
    graph: TaskGraph,
    system: ProcessorSystem,
    spec: MachineSpec | None = None,
    *,
    epsilon: float = 0.0,
    pruning: PruningConfig | None = None,
    cost: str | CostFunction = "paper",
    budget: Budget | None = None,
) -> ParallelResult:
    """Schedule ``graph`` on ``system`` with parallel A* on ``spec`` PPEs.

    ``epsilon > 0`` runs the parallel Aε* of §3.4 on the same machinery
    (this is the configuration behind the paper's Figure 7).
    """
    if spec is None:
        spec = MachineSpec()
    if pruning is None:
        pruning = PruningConfig.all()
    if isinstance(cost, str):
        cost_fn = make_cost_function(cost, graph, system)
    else:
        cost_fn = cost
    if budget is None:
        budget = Budget.unlimited()
    budget.start()

    network = PPENetwork(spec)
    q = spec.num_ppes
    stats = SearchStats()
    expander = StateExpander(graph, system, pruning, stats.pruning)

    fallback = fast_upper_bound_schedule(graph, system)
    relax = 1.0 + epsilon
    # The unrelaxed U stays valid for ε > 0: optimal-path states have
    # f ≤ f_opt ≤ U and survive, so the (1+ε)·global-min termination
    # test still fires (see repro.search.focal for the argument).
    upper = fallback.length if pruning.upper_bound else math.inf
    incumbent: Schedule | None = None

    t0 = time.perf_counter()
    dup_on = pruning.duplicate_detection
    ub_on = pruning.upper_bound
    seq = 0

    def evaluate(child: PartialSchedule) -> _Entry | None:
        """Cost a child; None when the upper-bound rule discards it."""
        nonlocal seq, incumbent, upper
        ch = cost_fn.h(child)
        cf = child.makespan + ch
        if ub_on and tol.gt(cf, upper):
            stats.pruning.upper_bound_cuts += 1
            return None
        if child.is_complete() and (
            incumbent is None or child.makespan < incumbent.length
        ):
            incumbent = child.to_schedule()
            if ub_on:
                upper = min(upper, incumbent.length)
        seq += 1
        return (cf, ch, seq, child)

    # ---- seed phase: every PPE expands the empty state identically -------
    # (paper: "Every PPE initializes the OPEN list by expanding the
    # initial empty state"; Case 3 keeps expanding until k >= q.)
    root = PartialSchedule.empty(graph, system)
    seed_heap: list[_Entry] = [(0.0, 0.0, 0, root)]
    seed_seen = SignatureSet(verify=pruning.verify_signatures)
    seed_seen.add(root.dedup_key, lambda: root.signature)
    seed_expansions = 0
    while seed_heap and len(seed_heap) < max(q, 2):
        f, h, _s, state = heapq.heappop(seed_heap)
        if state.is_complete():
            # Degenerate: the whole space fit below q states.
            heapq.heappush(seed_heap, (f, h, _s, state))
            break
        seed_expansions += 1
        for child in expander.children(state, seed_seen if dup_on else None):
            entry = evaluate(child)
            if entry is not None:
                stats.states_generated += 1
                heapq.heappush(seed_heap, entry)

    ppes = [_PPE(index=i) for i in range(q)]
    for ppe in ppes:
        # Every PPE ran the identical seed expansion, so every PPE's
        # CLOSED list starts with the seed-phase signatures.
        ppe.seen = seed_seen.copy()
    seeds = [(entry[0], entry) for entry in seed_heap]
    for i, bucket in enumerate(distribute_seeds(seeds, q)):
        for entry in bucket:
            ppes[i].push(entry)  # type: ignore[arg-type]

    # ---- phase loop --------------------------------------------------------
    v = graph.num_nodes
    T = max(2, v // 2)
    makespan = float(seed_expansions) * spec.expansion_cost
    comm_units = 0.0
    phases = 0
    comm_rounds = 0
    total_messages = 0
    optimal_proven = False

    while True:
        # -- local search phase: up to T expansions per PPE ----------------
        phases += 1
        for ppe in ppes:
            ppe.phase_expansions = 0
            heap = ppe.open_heap
            while heap and ppe.phase_expansions < T:
                entry = ppe.pop_best(epsilon, incumbent is not None)
                f, h, _s, state = entry
                ppe.phase_expansions += 1
                ppe.expansions += 1
                stats.states_expanded += 1
                if state.is_complete():
                    if incumbent is None or state.makespan < incumbent.length:
                        incumbent = state.to_schedule()
                        if ub_on:
                            upper = min(upper, incumbent.length)
                    continue
                if ub_on and tol.gt(f, upper):
                    stats.pruning.upper_bound_cuts += 1
                    continue
                for child in expander.children(
                    state, ppe.seen if dup_on else None
                ):
                    child_entry = evaluate(child)
                    if child_entry is not None:
                        stats.states_generated += 1
                        ppe.push(child_entry)
        phase_work = max(p.phase_expansions for p in ppes)
        makespan += phase_work * spec.expansion_cost
        open_total = sum(len(p.open_heap) for p in ppes)
        if open_total > stats.max_open_size:
            stats.max_open_size = open_total

        # -- barrier: termination and budget checks --------------------------
        global_min_f = min(p.peek_f() for p in ppes)
        # One tolerance helper for the ε-termination test (ISSUE 3):
        # the three ad-hoc `... + 1e-9` comparisons this replaces could
        # terminate an exact run one float-ulp early on drifted costs
        # (0.1 + 0.2 style) or fail to fire on large-magnitude
        # makespans where 1e-9 is below one ulp.
        if incumbent is not None and tol.proves_bound(
            incumbent.length, epsilon, global_min_f
        ):
            optimal_proven = True
            break
        if global_min_f is math.inf:
            optimal_proven = True  # space exhausted below the bound
            break
        if budget.exhausted(stats.states_expanded, stats.states_generated):
            break

        # -- communication round ------------------------------------------------
        comm_rounds += 1
        for ppe in ppes:
            ppe.messages = 0

        # (a) Neighbourhood vote: each PPE imports the elected best state.
        heads: list[_Entry | None] = [
            p.open_heap[0] if p.open_heap else None for p in ppes
        ]
        for ppe in ppes:
            group = network.group(ppe.index)
            ppe.messages += len(group) - 1  # cost-exchange with neighbours
            best: _Entry | None = None
            for member in group:
                head = heads[member]
                if head is not None and (best is None or head[0] < best[0]):
                    best = head
            if best is None:
                continue
            own = heads[ppe.index]
            if own is not None and best is own:
                continue  # already holds the elected state
            f, h, _s, state = best
            sig = state.dedup_key
            # Imported states go through seen()/add() with the exact
            # signature so verify mode covers cross-PPE traffic too.
            exact = (
                (lambda s=state: s.signature) if ppe.seen.verify else None
            )
            if dup_on and ppe.seen.seen(sig, exact):
                stats.pruning.duplicate_hits += 1
                continue
            if dup_on:
                ppe.seen.add(sig, exact)
            seq += 1
            ppe.push((f, h, seq, state))
            ppe.messages += 1
            total_messages += 1
            stats.states_generated += 1  # duplicated copy = extra state

        # (b) Round-robin load sharing of OPEN counts (§3.3 listing).
        counts = [len(p.open_heap) for p in ppes]
        for donor, receiver, amount in plan_round_robin_shares(counts):
            moved = 0
            for _ in range(amount):
                if not ppes[donor].open_heap:
                    break
                entry = ppes[donor].pop_tail()
                state = entry[3]
                sig = state.dedup_key
                recv_seen = ppes[receiver].seen
                exact = (
                    (lambda s=state: s.signature) if recv_seen.verify else None
                )
                if dup_on and recv_seen.seen(sig, exact):
                    stats.pruning.duplicate_hits += 1
                    # The donor dropped it; receiver already has it.
                    continue
                if dup_on:
                    recv_seen.add(sig, exact)
                ppes[receiver].push(entry)
                moved += 1
            ppes[donor].messages += moved
            ppes[receiver].messages += moved
            total_messages += moved

        round_cost = max(p.messages for p in ppes) * spec.comm_latency
        makespan += round_cost
        comm_units += round_cost

        # (c) Exponentially decreasing communication period.
        T = max(2, T // 2)

    stats.wall_seconds = time.perf_counter() - t0
    stats.cost_evaluations = cost_fn.evaluations
    schedule = incumbent if incumbent is not None else fallback
    if optimal_proven:
        algorithm = "parallel-astar" if epsilon == 0.0 else f"parallel-focal(eps={epsilon})"
    else:
        algorithm = "parallel-astar(budget)"
    result = SearchResult(
        schedule=schedule,
        optimal=optimal_proven and epsilon == 0.0,
        bound=relax if optimal_proven else math.inf,
        stats=stats,
        algorithm=algorithm,
    )
    return ParallelResult(
        result=result,
        spec=spec,
        makespan_units=makespan,
        phases=phases,
        comm_rounds=comm_rounds,
        total_messages=total_messages,
        per_ppe_expansions=[p.expansions for p in ppes],
        seed_expansions=seed_expansions,
        comm_units=comm_units,
    )
