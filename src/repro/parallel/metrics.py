"""Speedup accounting for the parallel search (paper Figure 6).

Speedup is serial work over parallel makespan, both measured in the
same simulated time units (one expansion = ``expansion_cost`` units),
which is the hardware-independent analogue of the paper's
wall-clock-over-wall-clock ratio on the Paragon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.taskgraph import TaskGraph
from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_astar import ParallelResult, parallel_astar_schedule
from repro.search.astar import astar_schedule
from repro.search.pruning import PruningConfig
from repro.search.result import SearchResult
from repro.system.processors import ProcessorSystem
from repro.util.timing import Budget

__all__ = ["SpeedupReport", "measure_speedup"]


@dataclass(frozen=True)
class SpeedupReport:
    """One speedup measurement (one point of a Figure-6 curve).

    Attributes
    ----------
    num_ppes:
        PPE count of the parallel run.
    speedup:
        ``serial_units / parallel_units``.
    efficiency:
        ``speedup / num_ppes``.
    serial_units, parallel_units:
        Simulated time of the two runs.
    serial_expansions, parallel_expansions:
        Work counters; their ratio shows the "extra states" overhead.
    lengths_agree:
        Both runs returned schedules of equal length (must be True for
        exact runs — asserted by tests).
    """

    num_ppes: int
    speedup: float
    efficiency: float
    serial_units: float
    parallel_units: float
    serial_expansions: int
    parallel_expansions: int
    lengths_agree: bool


def measure_speedup(
    graph: TaskGraph,
    system: ProcessorSystem,
    spec: MachineSpec,
    *,
    pruning: PruningConfig | None = None,
    cost: str = "paper",
    budget: Budget | None = None,
    serial_result: SearchResult | None = None,
) -> tuple[SpeedupReport, ParallelResult]:
    """Run serial and parallel A* on one instance and compare.

    ``serial_result`` may be supplied to reuse a cached serial run (the
    experiment drivers sweep PPE counts against one serial baseline).
    """
    if serial_result is None:
        serial_result = astar_schedule(
            graph, system, pruning=pruning, cost=cost, budget=budget
        )
    par = parallel_astar_schedule(
        graph, system, spec, pruning=pruning, cost=cost, budget=budget
    )
    serial_units = serial_result.stats.states_expanded * spec.expansion_cost
    parallel_units = par.makespan_units
    speedup = serial_units / parallel_units if parallel_units > 0 else 1.0
    report = SpeedupReport(
        num_ppes=spec.num_ppes,
        speedup=speedup,
        efficiency=speedup / spec.num_ppes,
        serial_units=serial_units,
        parallel_units=parallel_units,
        serial_expansions=serial_result.stats.states_expanded,
        parallel_expansions=par.total_expansions,
        lengths_agree=(
            serial_result.schedule is not None
            and par.schedule is not None
            and abs(serial_result.schedule.length - par.schedule.length) < 1e-9
        ),
    )
    return report, par
