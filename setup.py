"""Legacy setuptools shim.

All metadata lives in pyproject.toml (PEP 621, read by setuptools >= 61
on every install path); this file exists only so that offline
environments lacking the ``wheel`` package can still install editable
via ``python setup.py develop`` — PEP 660 editable installs require
bdist_wheel.  Everyone else: ``pip install -e .`` (see README.md).
"""

from setuptools import setup

setup()
