"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments that lack the
``wheel`` package (PEP 660 editable installs require bdist_wheel).
"""

from setuptools import setup

setup()
