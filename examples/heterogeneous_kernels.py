#!/usr/bin/env python3
"""Scheduling numerical kernels on heterogeneous processors.

Goes beyond the paper's homogeneous experiments (its model explicitly
allows heterogeneous speeds, §2): schedules Gaussian-elimination, FFT
and Laplace-wavefront task graphs on a system mixing fast and slow
processors, comparing optimal A* against list scheduling.

Run:  python examples/heterogeneous_kernels.py
"""

from repro import Budget, astar_schedule, list_schedule
from repro.graph.generators.kernels import (
    fft_graph,
    gaussian_elimination_graph,
    laplace_graph,
)
from repro.system.processors import ProcessorSystem
from repro.util.tables import render_table


def main() -> None:
    # Two fast processors (2x) and two baseline ones, fully connected.
    system = ProcessorSystem.fully_connected(
        4, speeds=[2.0, 2.0, 1.0, 1.0], name="hetero-4"
    )
    budget = Budget(max_expanded=300_000, max_seconds=30.0)

    kernels = {
        "gauss-4": gaussian_elimination_graph(4, comp=20, comm_scale=0.5),
        "fft-4": fft_graph(2, comp=20, comm_scale=0.5),
        "laplace-3x3": laplace_graph(3, comp=20, comm_scale=0.5),
    }

    rows = []
    for name, graph in kernels.items():
        optimal = astar_schedule(graph, system, cost="improved", budget=budget)
        heuristic = list_schedule(graph, system)
        gap = 100.0 * (heuristic.length - optimal.length) / optimal.length
        rows.append([
            name,
            graph.num_nodes,
            optimal.length,
            "yes" if optimal.optimal else "budget",
            heuristic.length,
            f"+{gap:.1f}%",
            optimal.schedule.num_used_pes,
        ])

    print(render_table(
        ["kernel", "tasks", "optimal", "proven", "list sched.", "gap",
         "PEs used"],
        rows,
        title="Optimal vs heuristic scheduling of kernels on a heterogeneous "
              "system (2 fast + 2 slow PEs)",
        float_fmt="{:g}",
    ))


if __name__ == "__main__":
    main()
