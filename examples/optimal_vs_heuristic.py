#!/usr/bin/env python3
"""Measuring heuristic deviation from optimal (the paper's motivation).

The paper's introduction argues that optimal schedules are valuable as a
*reference*: "in the absence of optimal solutions as a reference, the
average performance deviation of these heuristics is unknown."  This
example performs that measurement on a batch of §4.1 random graphs:
list scheduling under three priority schemes, insertion-based
scheduling, and CP/MISF, all against the A* optimum.

Run:  python examples/optimal_vs_heuristic.py
"""

from repro import (
    Budget,
    astar_schedule,
    cpmisf_schedule,
    insertion_list_schedule,
    list_schedule,
)
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.system.processors import ProcessorSystem
from repro.util.tables import render_table

HEURISTICS = {
    "list (b-level)": lambda g, s: list_schedule(g, s, scheme="b-level"),
    "list (sl)": lambda g, s: list_schedule(g, s, scheme="static-level"),
    "list (b+t)": lambda g, s: list_schedule(g, s, scheme="b+t-level"),
    "insertion": insertion_list_schedule,
    "CP/MISF": cpmisf_schedule,
}


def main() -> None:
    instances = [
        (paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed)), ccr)
        for v, ccr, seed in [
            (10, 0.1, 1), (10, 1.0, 2), (10, 10.0, 3),
            (12, 0.1, 4), (12, 1.0, 5), (12, 10.0, 6),
        ]
    ]

    deviations: dict[str, list[float]] = {name: [] for name in HEURISTICS}
    rows = []
    for graph, ccr in instances:
        system = ProcessorSystem.fully_connected(graph.num_nodes)
        optimal = astar_schedule(
            graph, system, cost="improved", budget=Budget(max_expanded=500_000)
        )
        row: list[object] = [f"v={graph.num_nodes} ccr={ccr}", optimal.length]
        for name, fn in HEURISTICS.items():
            length = fn(graph, system).length
            dev = 100.0 * (length - optimal.length) / optimal.length
            deviations[name].append(dev)
            row.append(f"{dev:+.1f}%")
        row.append("yes" if optimal.optimal else "budget")
        rows.append(row)

    print(render_table(
        ["instance", "optimal"] + list(HEURISTICS) + ["proven"],
        rows,
        title="Heuristic deviation from the optimal schedule length",
        float_fmt="{:g}",
    ))
    print("\nmean deviation per heuristic:")
    for name, devs in deviations.items():
        print(f"  {name:<16} {sum(devs) / len(devs):+.2f}%")


if __name__ == "__main__":
    main()
