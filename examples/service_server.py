#!/usr/bin/env python3
"""The solver daemon: serve solve requests over HTTP with dedupe.

Starts an embedded :class:`SolverServer` (the same daemon ``repro
serve`` runs, here on a background thread with a free port), then
demonstrates the serving semantics with the bundled client:

* a cold solve runs the portfolio on the persistent worker pool;
* a repeat of the same instance is answered from the result cache;
* a *relabeled* copy (same problem, different node numbering) also
  hits the cache — canonical fingerprints make the instance identity
  label-free;
* concurrent duplicate requests are solved once and fan out from the
  in-flight twin (the dedupe counter is visible in ``/metrics``);
* shutdown drains gracefully: accepted jobs finish, nothing is lost.

Run:  python examples/service_server.py
"""

import random
import threading

from repro import ProcessorSystem, TaskGraph
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.service import ServerClient, SolverServer


def relabeled(graph: TaskGraph, seed: int) -> TaskGraph:
    """The same instance with its nodes renumbered at random."""
    rng = random.Random(seed)
    perm = list(range(graph.num_nodes))
    rng.shuffle(perm)
    inv = [0] * graph.num_nodes
    for old, new in enumerate(perm):
        inv[new] = old
    return TaskGraph(
        [graph.weight(inv[i]) for i in range(graph.num_nodes)],
        {(perm[u], perm[w]): c for (u, w), c in graph.edges.items()},
        name=f"{graph.name}-relabeled",
    )


def main() -> None:
    server = SolverServer(port=0, solver_workers=1, queue_limit=16,
                          max_expansions=50_000)
    thread = server.serve_in_thread()
    client = ServerClient(port=server.port)
    print(f"daemon listening on http://{server.host}:{server.port}")
    print(f"health: {client.healthz()}")

    graph = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=1.0, seed=42))
    system = ProcessorSystem.fully_connected(4)

    first = client.solve(graph, system, name="cold")
    print(f"\ncold solve : via {first['via']:5s} "
          f"length {first['result']['makespan']:g} "
          f"({first['result']['certificate']}, "
          f"{first['result']['algorithm']})")

    again = client.solve(graph, system, name="repeat")
    print(f"repeat     : via {again['via']:5s} "
          f"length {again['result']['makespan']:g}")

    twin = client.solve(relabeled(graph, seed=7), system, name="twin")
    print(f"relabeled  : via {twin['via']:5s} "
          f"length {twin['result']['makespan']:g}  "
          f"(same fingerprint: {twin['fingerprint'] == first['fingerprint']})")

    # Concurrent duplicates of a fresh instance: solved once, fanned out.
    fresh = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=10.0, seed=5))
    outcomes = []
    threads = [
        threading.Thread(
            target=lambda: outcomes.append(client.solve(fresh, system))
        )
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    vias = sorted(o["via"] for o in outcomes)
    print(f"\n4 concurrent duplicates answered via: {vias}")

    metrics = client.metrics()
    print(f"metrics    : {metrics['jobs']}")
    print(f"engines    : {metrics['engines']}")

    server.shutdown()
    thread.join(timeout=60)
    print("\ndrained cleanly — accepted == completed, nothing lost")


if __name__ == "__main__":
    main()
