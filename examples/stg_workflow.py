#!/usr/bin/env python3
"""Working with STG files, memory-bounded search, and schedule analytics.

Demonstrates the interoperability layer: export a kernel task graph to
the Standard Task Graph (STG) format used across the scheduling
literature, re-import it, schedule it with three different engines
(A*, IDA* and weighted A*), and compare the schedules with the
analytics module.

Run:  python examples/stg_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    Budget,
    ProcessorSystem,
    analyze_schedule,
    astar_schedule,
    idastar_schedule,
    load_stg,
    save_stg,
    weighted_astar_schedule,
)
from repro.graph.generators.kernels import gaussian_elimination_graph
from repro.util.tables import render_table


def main() -> None:
    graph = gaussian_elimination_graph(4, comp=25, comm_scale=0.8)
    system = ProcessorSystem.fully_connected(4)
    budget = Budget(max_expanded=200_000, max_seconds=30.0)

    # Round-trip through the STG interchange format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gauss4.stg"
        save_stg(graph, path)
        print(f"wrote {path.name} ({path.stat().st_size} bytes); first lines:")
        print("\n".join(path.read_text().splitlines()[:4]))
        graph = load_stg(path)

    engines = {
        "A*": lambda: astar_schedule(graph, system, budget=budget),
        "IDA*": lambda: idastar_schedule(graph, system, budget=budget),
        "WA* (ε=0.3)": lambda: weighted_astar_schedule(
            graph, system, 0.3, budget=budget
        ),
    }

    rows = []
    for name, run in engines.items():
        result = run()
        m = analyze_schedule(result.schedule)
        rows.append([
            name,
            result.length,
            "yes" if result.optimal else f"≤{result.bound:g}×opt",
            result.stats.states_expanded,
            result.stats.max_open_size,
            m.used_pes,
            f"{m.efficiency:.2f}",
            m.comm_volume,
        ])

    print()
    print(render_table(
        ["engine", "length", "optimal", "expanded", "peak frontier",
         "PEs", "efficiency", "comm"],
        rows,
        title="Gaussian elimination (4×4) on 4 PEs — engine comparison",
        float_fmt="{:g}",
    ))
    print("\nNote IDA*'s small peak frontier (O(v) memory) versus A*'s OPEN —")
    print("the time/memory dial the paper's related-work section discusses.")


if __name__ == "__main__":
    main()
