#!/usr/bin/env python3
"""Service layer: fingerprints, the result cache, and batch serving.

Builds a small batch of requests that includes a *relabeled* duplicate
(same problem, different node numbering — the situation a plain
graph-keyed cache would miss), serves it through the portfolio
front-end twice, and shows what the service layer does on each pass:

* pass 1 (cold): the relabeled twin dedupes onto its original via the
  canonical fingerprint, every unique instance is solved once, results
  enter the cache;
* pass 2 (warm): everything is answered from the cache without search.

Run:  python examples/service_batch.py
"""

import random

from repro import ProcessorSystem, TaskGraph, instance_fingerprint
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.service.batch import BatchItem, run_batch
from repro.service.cache import ResultCache


def relabeled(graph: TaskGraph, seed: int) -> TaskGraph:
    """The same instance with its nodes renumbered at random."""
    rng = random.Random(seed)
    perm = list(range(graph.num_nodes))
    rng.shuffle(perm)
    inv = [0] * graph.num_nodes
    for old, new in enumerate(perm):
        inv[new] = old
    return TaskGraph(
        [graph.weight(inv[i]) for i in range(graph.num_nodes)],
        {(perm[u], perm[w]): c for (u, w), c in graph.edges.items()},
        name=f"{graph.name}-relabeled",
    )


def main() -> None:
    system = ProcessorSystem.fully_connected(4)
    original = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=42))
    twin = relabeled(original, seed=7)
    other = paper_random_graph(PaperGraphSpec(num_nodes=10, ccr=10.0, seed=5))

    print("fingerprints (node numbering does not matter):")
    print(f"  original : {instance_fingerprint(original, system)}")
    print(f"  relabeled: {instance_fingerprint(twin, system)}")
    print(f"  other    : {instance_fingerprint(other, system)}")

    items = [
        BatchItem(name="original", graph=original, system=system),
        BatchItem(name="relabeled-twin", graph=twin, system=system),
        BatchItem(name="other", graph=other, system=system),
    ]

    cache = ResultCache()  # in-memory; pass a path for persistence
    print("\n-- pass 1: cold cache " + "-" * 40)
    cold = run_batch(items, cache=cache, deadline=20.0)
    print(cold.render())

    print("\n-- pass 2: warm cache " + "-" * 40)
    warm = run_batch(items, cache=cache)
    print(warm.render())

    speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
    print(f"\nwarm-cache speedup: {speedup:.0f}x")
    print(f"cache counters    : {cache.counters()}")


if __name__ == "__main__":
    main()
