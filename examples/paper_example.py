#!/usr/bin/env python3
"""The paper's worked example, end to end (Figures 1-5).

Reproduces, in order:

* Figure 2 — the static-level / b-level / t-level table;
* Figure 3 — the A* search tree with per-state ``f = g + h`` costs and
  expansion order;
* Figure 4 — the optimal schedule (length 14) as a Gantt chart;
* Figure 5 / §3.3 — the 2-PPE parallel A* run on the simulated
  message-passing machine, with its speedup estimate (the paper
  measured 1.7 on the Intel Paragon).

Run:  python examples/paper_example.py
"""

from repro import (
    MachineSpec,
    compute_levels,
    measure_speedup,
    paper_example_dag,
    paper_example_system,
    render_gantt,
)
from repro.search.astar import astar_schedule
from repro.search.diagnostics import SearchTrace
from repro.search.enumerate import count_complete_schedules
from repro.util.tables import render_table


def main() -> None:
    graph = paper_example_dag()
    system = paper_example_system()

    # ---- Figure 2: node levels --------------------------------------
    levels = compute_levels(graph)
    rows = [
        [graph.label(n), levels.static_level[n], levels.b_level[n],
         levels.t_level[n]]
        for n in range(graph.num_nodes)
    ]
    print(render_table(
        ["node", "sl", "b-level", "t-level"], rows,
        title="Figure 2 — static levels, b-levels and t-levels",
        float_fmt="{:g}",
    ))

    # ---- Figure 3: the pruned search tree ------------------------------
    trace = SearchTrace()
    result = astar_schedule(graph, system, trace=trace)
    exhaustive = count_complete_schedules(graph, system)
    print("\nFigure 3 — the A* search tree "
          f"({result.stats.states_generated} states generated, "
          f"{result.stats.states_expanded} expanded; the exhaustive tree "
          f"has {exhaustive} complete schedules — more than 3^6 = 729):\n")
    print(trace.render())

    # ---- Figure 4: the optimal schedule --------------------------------
    print(f"\nFigure 4 — optimal schedule (length = {result.schedule.length:g}):\n")
    print(render_gantt(result.schedule))

    # ---- Figure 5 / §3.3: parallel A* on 2 PPEs -------------------------
    report, par = measure_speedup(
        graph, system, MachineSpec(num_ppes=2, topology="mesh")
    )
    print("\n§3.3 — parallel A* on 2 simulated PPEs "
          f"(paper measured 1.7 on the Paragon):")
    print(f"  schedule length  : {par.result.length:g} (same optimum)")
    print(f"  simulated speedup: {report.speedup:.2f}")
    print(f"  parallel states  : {par.total_expansions} "
          f"(serial: {report.serial_expansions} — the extra states of Figure 5)")


if __name__ == "__main__":
    main()
