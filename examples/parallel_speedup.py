#!/usr/bin/env python3
"""Parallel A* speedup sweep (a slice of the paper's Figure 6).

Runs the simulated parallel A* on 2/4/8/16 mesh-connected PPEs over a
few §4.1 random graphs and prints the speedup table, then demonstrates
the real-multiprocessing backend on the same instance.

Run:  python examples/parallel_speedup.py
"""

import time

from repro import (
    Budget,
    MachineSpec,
    astar_schedule,
    measure_speedup,
    multiprocessing_astar_schedule,
)
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.system.processors import ProcessorSystem
from repro.util.tables import render_table


def main() -> None:
    budget = Budget(max_expanded=100_000, max_seconds=20.0)
    rows = []
    for v, ccr, seed in [(10, 1.0, 42), (12, 10.0, 7), (14, 1.0, 3)]:
        graph = paper_random_graph(PaperGraphSpec(num_nodes=v, ccr=ccr, seed=seed))
        system = ProcessorSystem.fully_connected(v)
        serial = astar_schedule(graph, system, budget=budget)
        row: list[object] = [f"v={v} ccr={ccr}"]
        for q in (2, 4, 8, 16):
            report, _ = measure_speedup(
                graph, system, MachineSpec(num_ppes=q, topology="mesh"),
                serial_result=serial, budget=budget,
            )
            row.append(f"{report.speedup:.2f}")
        rows.append(row)

    print(render_table(
        ["instance", "2 PPEs", "4 PPEs", "8 PPEs", "16 PPEs"],
        rows,
        title="Simulated parallel A* speedup (mesh topology, Figure-6 style)",
    ))

    # Real cores: the multiprocessing backend on one instance.
    graph = paper_random_graph(PaperGraphSpec(num_nodes=12, ccr=1.0, seed=11))
    system = ProcessorSystem.fully_connected(12)
    t0 = time.perf_counter()
    serial = astar_schedule(graph, system, budget=budget)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = multiprocessing_astar_schedule(graph, system, workers=4)
    t_parallel = time.perf_counter() - t0
    print("\nReal multiprocessing backend (4 worker processes):")
    print(f"  serial A*  : length {serial.length:g} in {t_serial:.2f}s")
    print(f"  4 workers  : length {parallel.length:g} in {t_parallel:.2f}s")
    print("  (on instances this small, process startup + duplicated subtree")
    print("   work can outweigh the parallelism — the same overheads the")
    print("   paper's Figure 6 shows shrinking speedups for small graphs)")
    assert abs(serial.length - parallel.length) < 1e-9


if __name__ == "__main__":
    main()
