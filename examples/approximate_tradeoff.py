#!/usr/bin/env python3
"""The Aε* quality/time trade-off (the paper's Figure 7, serial view).

Sweeps ε over a §4.1 random graph and reports, for each ε: the returned
schedule length, its deviation from optimal, the proven bound, and the
work saved relative to exact A*.

Run:  python examples/approximate_tradeoff.py
"""

from repro import Budget, astar_schedule, focal_schedule
from repro.graph.generators.random_paper import PaperGraphSpec, paper_random_graph
from repro.system.processors import ProcessorSystem
from repro.util.tables import render_table


def main() -> None:
    graph = paper_random_graph(PaperGraphSpec(num_nodes=14, ccr=1.0, seed=3))
    system = ProcessorSystem.fully_connected(14)
    budget = Budget(max_expanded=400_000, max_seconds=60.0)

    exact = astar_schedule(graph, system, budget=budget)
    print(f"exact A*: length {exact.length:g} "
          f"({exact.stats.states_expanded} states expanded, "
          f"{exact.stats.wall_seconds:.2f}s)\n")

    rows = []
    for eps in (0.05, 0.1, 0.2, 0.5, 1.0):
        approx = focal_schedule(graph, system, eps, budget=budget)
        deviation = 100.0 * (approx.length - exact.length) / exact.length
        saved = 1.0 - (
            approx.stats.states_expanded / max(1, exact.stats.states_expanded)
        )
        rows.append([
            eps,
            approx.length,
            f"{deviation:+.2f}%",
            f"≤ {100 * eps:.0f}%",
            approx.stats.states_expanded,
            f"{100 * saved:.0f}%",
        ])
        assert approx.length <= (1 + eps) * exact.length + 1e-9

    print(render_table(
        ["ε", "length", "actual deviation", "guaranteed", "expanded", "work saved"],
        rows,
        title="Aε* — bounded-degradation scheduling (Theorem 2)",
        float_fmt="{:g}",
    ))
    print("\nNote how the actual deviation stays far below the guarantee —")
    print("the paper observes exactly this in Figure 7.")


if __name__ == "__main__":
    main()
