#!/usr/bin/env python3
"""Quickstart: schedule a small task graph optimally.

Builds a 6-task DAG (the paper's Figure-1 example), schedules it on a
3-processor ring with the A* scheduler, and prints the optimal Gantt
chart plus the search statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    ProcessorSystem,
    TaskGraph,
    astar_schedule,
    render_gantt,
    validate_schedule,
)


def main() -> None:
    # A task graph: node weights are computation costs, edge weights are
    # communication costs (paid only when the two tasks land on
    # different processors).
    graph = TaskGraph(
        weights=[2, 3, 3, 4, 5, 2],
        edges={
            (0, 1): 1, (0, 2): 1, (0, 3): 2,   # n1 feeds n2, n3, n4
            (1, 4): 1, (2, 4): 1,              # n2, n3 feed n5
            (3, 5): 4, (4, 5): 5,              # n4, n5 feed n6
        },
    )

    # A target system: three identical processors in a ring.
    system = ProcessorSystem.ring(3)

    # Optimal scheduling via A* with all pruning techniques (the default).
    result = astar_schedule(graph, system)

    print(f"algorithm        : {result.algorithm}")
    print(f"optimal          : {result.optimal}")
    print(f"schedule length  : {result.schedule.length:g}")
    print(f"states generated : {result.stats.states_generated}")
    print(f"states expanded  : {result.stats.states_expanded}")
    print(f"pruning hits     : {result.stats.pruning.as_dict()}")
    print()
    validate_schedule(result.schedule)  # raises if infeasible
    print(render_gantt(result.schedule))


if __name__ == "__main__":
    main()
